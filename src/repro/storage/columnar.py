"""Columnar (numpy-slab) layout for the versioned vertex-state store.

The object layouts in :mod:`repro.storage.versioned` keep one Python
``_Chain`` per ``(loop, key)``: a million-vertex graph means a million
small lists, a million dict entries, and Python-level bisects on every
read.  This module stores a whole loop as *column slabs* instead
(arrangement-style, as REX keeps delta-based state):

* a sorted **base**: one ``int64`` composite column ``(slot << 32) |
  iteration`` plus a parallel object column of values, with a CSR-like
  ``offsets`` array marking each key's segment;
* a **pending log** of unconsolidated writes (whole numpy blocks from
  slab puts, plus a scalar tail), folded into the base by *batched
  rebases* — one ``lexsort`` + last-write-wins dedup over the whole
  loop, amortised geometrically instead of per-chain.

Every read answers from the sorted base via ``searchsorted`` on the
composite column, so ``get_many`` / ``snapshot`` / ``truncate_before``
are single vectorized passes rather than per-key Python walks.

Semantics are **identical** to the delta layout (same results, same
key/insertion ordering of returned dicts, same last-write-per-iteration
wins) — :class:`repro.storage.versioned.VersionedStore` treats this as a
drop-in chain backend, which is what makes the columnar/scalar digest
oracle possible.  Only the *housekeeping counters* (rebase counts)
differ: rebases are per-loop slab folds here, per-chain consolidations
there.

This is the only module under ``repro.storage`` allowed to import numpy
at module top level; ``VersionedStore`` imports it lazily so the object
layouts stay importable without the columnar path active.
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np

from repro.errors import StorageError

#: Iterations must fit the low 32 bits of the composite column.
MAX_ITERATION = (1 << 32) - 1
#: Keys (slots) must fit the high bits (int64 composite stays positive).
MAX_SLOTS = 1 << 31


class _ColumnarLoop:
    """One loop's slabs: sorted base + pending block log."""

    __slots__ = ("slot_of", "key_of", "dense", "offsets", "comp",
                 "values", "newest", "pending", "pending_rows",
                 "tail_slots", "tail_iters", "tail_values")

    def __init__(self) -> None:
        self.slot_of: dict[Any, int] = {}
        self.key_of: list[Any] = []
        #: True while every key created so far is the integer equal to
        #: its slot — then slab puts skip the per-key dict translation.
        self.dense = True
        self.offsets = np.zeros(1, dtype=np.int64)
        self.comp = np.empty(0, dtype=np.int64)
        self.values = np.empty(0, dtype=object)
        #: Per-slot newest iteration over base *and* pending (put_if_newer
        #: must see unconsolidated writes); -1 = no version yet.
        self.newest = np.empty(0, dtype=np.int64)
        #: Arrival-ordered pending blocks: (slots, iters, values) arrays.
        self.pending: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self.pending_rows = 0
        # Scalar-put tail, folded into a block lazily (keeps single puts
        # O(1) without a one-row array per write).
        self.tail_slots: list[int] = []
        self.tail_iters: list[int] = []
        self.tail_values: list[Any] = []

    # ------------------------------------------------------------- slots
    def _grow_newest(self, n_slots: int) -> None:
        if n_slots > len(self.newest):
            grown = np.full(max(n_slots, 2 * len(self.newest), 16), -1,
                            dtype=np.int64)
            grown[:len(self.newest)] = self.newest
            self.newest = grown

    def _slot(self, key: Any) -> int:
        slot = self.slot_of.get(key)
        if slot is None:
            slot = len(self.key_of)
            if slot >= MAX_SLOTS:
                raise StorageError("columnar layout: too many keys")
            self.slot_of[key] = slot
            self.key_of.append(key)
            self._grow_newest(slot + 1)
            if self.dense and not (isinstance(key, int) and key == slot):
                self.dense = False
        return slot

    def _slots_array(self, keys: Any) -> np.ndarray:
        """Translate a key batch to slots, creating missing ones.

        Integer batches against a dense loop (key == slot so far) skip
        the per-key dict translation entirely.  Everything else goes
        key by key through the *original* Python objects — never through
        a numpy round-trip, which would swap e.g. ``str`` keys for
        ``np.str_`` and poison downstream dict reprs/digests."""
        arr = keys if isinstance(keys, np.ndarray) else None
        if arr is None:
            try:
                arr = np.asarray(keys)
            except Exception:
                arr = np.empty(0)
        numeric = arr.ndim == 1 and arr.dtype.kind in "iu"
        if numeric and self.dense and arr.size and int(arr.min()) >= 0:
            top = int(arr.max())
            n = len(self.key_of)
            if top >= n:
                if top + 1 > MAX_SLOTS:
                    raise StorageError("columnar layout: too many keys")
                # Dense extension: keys *are* slots; materialise the
                # range wholesale (dict.update runs in C).
                fresh = range(n, top + 1)
                self.slot_of.update(zip(fresh, fresh))
                self.key_of.extend(fresh)
                self._grow_newest(top + 1)
            return arr.astype(np.int64, copy=False)
        if numeric:
            seq: Any = arr.tolist()  # plain Python ints
        elif isinstance(keys, np.ndarray):
            seq = keys.tolist()
        else:
            seq = list(keys)
        return np.fromiter((self._slot(key) for key in seq),
                           dtype=np.int64, count=len(seq))

    # ------------------------------------------------------------ writes
    def put(self, iteration: int, key: Any, value: Any) -> None:
        if iteration > MAX_ITERATION:
            raise StorageError(f"iteration too large for columnar "
                               f"layout: {iteration}")
        slot = self._slot(key)
        self.tail_slots.append(slot)
        self.tail_iters.append(iteration)
        self.tail_values.append(value)
        self.pending_rows += 1
        if iteration > self.newest[slot]:
            self.newest[slot] = iteration

    def _push_tail(self) -> None:
        if not self.tail_slots:
            return
        vals = np.empty(len(self.tail_values), dtype=object)
        vals[:] = self.tail_values
        self.pending.append((np.asarray(self.tail_slots, dtype=np.int64),
                             np.asarray(self.tail_iters, dtype=np.int64),
                             vals))
        self.tail_slots, self.tail_iters, self.tail_values = [], [], []

    def put_columns(self, keys: Any, iterations: Any,
                    values: Any) -> int:
        """Append one column slab (vectorized ``put_many``)."""
        slots = self._slots_array(keys)
        count = int(slots.size)
        if count == 0:
            return 0
        if np.isscalar(iterations) or getattr(iterations, "ndim", 1) == 0:
            iters = np.full(count, int(iterations), dtype=np.int64)
        else:
            iters = np.asarray(iterations, dtype=np.int64)
            if iters.size != count:
                raise StorageError("keys/iterations length mismatch")
        if iters.size and (int(iters.min()) < 0
                           or int(iters.max()) > MAX_ITERATION):
            raise StorageError("iteration out of columnar range")
        if len(values) != count:
            raise StorageError("keys/values length mismatch")
        vals = np.empty(count, dtype=object)
        if isinstance(values, np.ndarray):
            # .tolist() unboxes numeric scalars to plain Python values.
            vals[:] = values if values.dtype == object else values.tolist()
        else:
            # Element-wise: sequence-typed values (tuples, lists) must
            # land as single cells, not broadcast as rows.
            for index, value in enumerate(values):
                vals[index] = value
        self._push_tail()  # keep arrival order across tail and blocks
        self.pending.append((slots, iters, vals))
        self.pending_rows += count
        np.maximum.at(self.newest, slots, iters)
        return count

    # ----------------------------------------------------------- rebases
    def should_rebase(self, interval: int) -> bool:
        """Batched-rebase policy: fold once the log reaches the
        configured interval, grown geometrically with the base so big
        loops amortise the sort."""
        return self.pending_rows >= max(interval, len(self.comp) >> 3)

    def rebase(self) -> bool:
        """Fold the pending log into the sorted base: one lexsort over
        (composite, arrival), keeping the last write per
        ``(key, iteration)``.  Returns whether anything folded."""
        self._push_tail()
        if not self.pending:
            return False
        comps = [self.comp]
        vals = [self.values]
        for slots, iters, values in self.pending:
            comps.append((slots << np.int64(32)) | iters)
            vals.append(values)
        all_comp = np.concatenate(comps)
        all_vals = np.concatenate(vals)
        self.pending = []
        self.pending_rows = 0
        # Base rows come first, then blocks in arrival order, so a
        # stable sort on the composite alone keeps last-write-wins.
        order = np.argsort(all_comp, kind="stable")
        comp_sorted = all_comp[order]
        keep = np.empty(comp_sorted.size, dtype=bool)
        if comp_sorted.size:
            keep[:-1] = comp_sorted[1:] != comp_sorted[:-1]
            keep[-1] = True
        self.comp = comp_sorted[keep]
        self.values = all_vals[order][keep]
        self._rebuild_offsets()
        return True

    def _rebuild_offsets(self) -> None:
        slots = self.comp >> np.int64(32)
        self.offsets = np.searchsorted(
            slots, np.arange(len(self.key_of) + 1, dtype=np.int64))

    # ------------------------------------------------------------- reads
    def _target(self, slot: int, bound: int | None) -> int:
        cap = MAX_ITERATION if bound is None else min(bound, MAX_ITERATION)
        return (slot << 32) | cap

    def latest(self, key: Any,
               bound: int | None) -> tuple[int, Any] | None:
        """Newest ``(iteration, value)`` of ``key`` with iteration ≤
        bound.  Caller must have settled the loop."""
        slot = self.slot_of.get(key)
        if slot is None or (bound is not None and bound < 0):
            return None
        lo = self.offsets[slot] if slot + 1 < len(self.offsets) else 0
        pos = int(np.searchsorted(self.comp, self._target(slot, bound),
                                  side="right"))
        if pos <= lo:
            return None
        return (int(self.comp[pos - 1] & MAX_ITERATION),
                self.values[pos - 1])

    def snapshot_rows(self, bound: int | None
                      ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized whole-loop view: ``(slots, rows)`` where ``rows``
        indexes the base columns — one searchsorted for every key."""
        n = len(self.key_of)
        if n == 0 or (bound is not None and bound < 0):
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        slots = np.arange(n, dtype=np.int64)
        cap = MAX_ITERATION if bound is None else min(bound, MAX_ITERATION)
        targets = (slots << np.int64(32)) | np.int64(cap)
        pos = np.searchsorted(self.comp, targets, side="right")
        valid = pos > self.offsets[:-1]
        return slots[valid], pos[valid] - 1

    def truncate_before(self, iteration: int) -> int:
        """Vectorized GC: per key, drop rows strictly older than the
        newest row ≤ ``iteration`` (that one stays readable)."""
        if iteration < 0 or self.comp.size == 0:
            return 0
        n = len(self.key_of)
        slots = np.arange(n, dtype=np.int64)
        cap = min(iteration, MAX_ITERATION)
        pos = np.searchsorted(self.comp,
                              (slots << np.int64(32)) | np.int64(cap),
                              side="right")
        starts = self.offsets[:-1]
        keep_start = np.maximum(starts, pos - 1)
        dropped = int((keep_start - starts).sum())
        if dropped == 0:
            return 0
        counts = self.offsets[1:] - keep_start
        total = int(counts.sum())
        before = np.concatenate(([0], np.cumsum(counts)[:-1]))
        rows = (np.arange(total, dtype=np.int64)
                + np.repeat(keep_start - before, counts))
        self.comp = self.comp[rows]
        self.values = self.values[rows]
        self._rebuild_offsets()
        return dropped

    def version_count(self) -> int:
        return int(self.comp.size)

    def nbytes(self) -> int:
        """Slab footprint: base + pending blocks + the scalar tail (the
        object value columns count pointer width only, matching the flat
        per-version estimate of the object layouts)."""
        total = (self.comp.nbytes + self.values.nbytes
                 + self.offsets.nbytes + self.newest.nbytes)
        for slots, iters, values in self.pending:
            total += slots.nbytes + iters.nbytes + values.nbytes
        total += 24 * len(self.tail_slots)
        return int(total)

    def max_iteration(self, key: Any) -> int | None:
        slot = self.slot_of.get(key)
        if slot is None:
            return None
        newest = int(self.newest[slot])
        return newest if newest >= 0 else None


class ColumnarStore:
    """Multi-loop slab store behind :class:`VersionedStore`.

    ``stats`` is the owning store; rebases are counted on its
    ``rebases`` attribute so the shared health gauges keep working.
    """

    def __init__(self, stats: Any, rebase_interval: int) -> None:
        self.stats = stats
        self.rebase_interval = rebase_interval
        self._loops: dict[str, _ColumnarLoop] = {}

    # ----------------------------------------------------------- helpers
    def _obtain(self, loop: str) -> _ColumnarLoop:
        state = self._loops.get(loop)
        if state is None:
            state = self._loops[loop] = _ColumnarLoop()
        return state

    def _settle(self, state: _ColumnarLoop) -> None:
        if state.pending_rows and state.rebase():
            self.stats.rebases += 1

    def _maybe_rebase(self, state: _ColumnarLoop) -> None:
        if state.should_rebase(self.rebase_interval) and state.rebase():
            self.stats.rebases += 1

    def nbytes(self) -> int:
        return sum(state.nbytes() for state in self._loops.values())

    # ------------------------------------------------------------ writes
    def put(self, loop: str, key: Any, iteration: int, value: Any) -> None:
        state = self._obtain(loop)
        state.put(iteration, key, value)
        self._maybe_rebase(state)

    def put_columns(self, loop: str, keys: Any, iterations: Any,
                    values: Any) -> int:
        state = self._obtain(loop)
        count = state.put_columns(keys, iterations, values)
        self._maybe_rebase(state)
        return count

    def max_iteration(self, loop: str, key: Any) -> int | None:
        state = self._loops.get(loop)
        return None if state is None else state.max_iteration(key)

    # ------------------------------------------------------------- reads
    def latest(self, loop: str, key: Any,
               bound: int | None) -> tuple[int, Any] | None:
        state = self._loops.get(loop)
        if state is None:
            return None
        self._settle(state)
        return state.latest(key, bound)

    def latest_many(self, loop: str, keys: Iterable[Any],
                    bound: int | None
                    ) -> tuple[int, dict[Any, tuple[int, Any]]]:
        """Batched point reads; returns ``(walked, found)`` with
        ``found`` in input-key order (matching the delta layout)."""
        state = self._loops.get(loop)
        found: dict[Any, tuple[int, Any]] = {}
        walked = 0
        if state is None:
            for _key in keys:
                walked += 1
            return walked, found
        self._settle(state)
        for key in keys:
            walked += 1
            version = state.latest(key, bound)
            if version is not None:
                found[key] = version
        return walked, found

    def keys(self, loop: str) -> list[Any]:
        state = self._loops.get(loop)
        return [] if state is None else list(state.key_of)

    def key_count(self, loop: str) -> int:
        state = self._loops.get(loop)
        return 0 if state is None else len(state.key_of)

    def snapshot_view(self, loop: str, bound: int | None) -> dict[Any, Any]:
        """Whole-loop view in key-creation (= first-put) order — the
        same dict ordering the delta layout's insertion-ordered chain
        index produces."""
        state = self._loops.get(loop)
        if state is None:
            return {}
        self._settle(state)
        slots, rows = state.snapshot_rows(bound)
        key_of = state.key_of
        values = state.values
        return {key_of[slot]: values[row]
                for slot, row in zip(slots.tolist(), rows.tolist())}

    def snapshot_columns(self, loop: str, bound: int | None = None
                         ) -> tuple[np.ndarray, np.ndarray]:
        """Array-native snapshot for the bulk engine: ``(keys, values)``
        without building a Python dict (keys in creation order)."""
        state = self._loops.get(loop)
        if state is None:
            empty = np.empty(0, dtype=np.int64)
            return empty, np.empty(0, dtype=object)
        self._settle(state)
        slots, rows = state.snapshot_rows(bound)
        if state.dense:
            keys = slots
        else:
            keys = np.empty(slots.size, dtype=object)
            keys[:] = [state.key_of[slot] for slot in slots.tolist()]
        return keys, state.values[rows]

    # --------------------------------------------------------- lifecycle
    def drop_loop(self, loop: str) -> int:
        state = self._loops.pop(loop, None)
        return 0 if state is None else len(state.key_of)

    def truncate_before(self, loop: str, iteration: int) -> int:
        state = self._loops.get(loop)
        if state is None:
            return 0
        self._settle(state)
        return state.truncate_before(iteration)

    def version_count(self, loop: str | None) -> int:
        if loop is None:
            states = list(self._loops.values())
        else:
            state = self._loops.get(loop)
            states = [] if state is None else [state]
        total = 0
        for state in states:
            self._settle(state)
            total += state.version_count()
        return total

    def export_versions(self) -> list[tuple[str, Any, int, Any]]:
        out: list[tuple[str, Any, int, Any]] = []
        for loop, state in self._loops.items():
            self._settle(state)
            key_of = state.key_of
            slots = (state.comp >> np.int64(32)).tolist()
            iters = (state.comp & np.int64(MAX_ITERATION)).tolist()
            out.extend(
                (loop, key_of[slot], iteration, value)
                for slot, iteration, value
                in zip(slots, iters, state.values))
        return out
