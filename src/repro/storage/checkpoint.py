"""Checkpoint bookkeeping.

Tornado's checkpoints are implicit (paper §5.3): a processor flushes every
version produced in an iteration *before* reporting progress, so once the
master has seen iteration τ terminate, the store holds a complete, durable
checkpoint at τ.  The manifest records which iterations are durable per
processor so recovery knows the restart frontier.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CheckpointManifest:
    """Durable-iteration frontier per (loop, processor)."""

    flushed: dict[tuple[str, str], int] = field(default_factory=dict)
    terminated: dict[str, int] = field(default_factory=dict)
    #: Test-only planted mutation: skews :meth:`restart_iteration` by this
    #: many iterations.  The chaos oracles must catch any non-zero value
    #: (see the mutation smoke tests); never set it outside those tests.
    planted_restart_skew: int = 0

    def record_flush(self, loop: str, processor: str, iteration: int) -> None:
        """Processor ``processor`` has made every version of ``loop`` up to
        ``iteration`` durable."""
        key = (loop, processor)
        if iteration > self.flushed.get(key, -1):
            self.flushed[key] = iteration

    def record_terminated(self, loop: str, iteration: int) -> None:
        """The master observed iteration ``iteration`` of ``loop``
        terminate (all processors durable at ≥ iteration)."""
        if iteration > self.terminated.get(loop, -1):
            self.terminated[loop] = iteration

    def restart_iteration(self, loop: str) -> int:
        """Iteration from which a recovering loop may resume: the last
        terminated iteration, or -1 if none (restart from scratch)."""
        last = self.terminated.get(loop, -1)
        if last >= 0 and self.planted_restart_skew:
            return max(-1, last + self.planted_restart_skew)
        return last

    def durable_frontier(self, loop: str, processors: list[str]) -> int:
        """Highest iteration durable on *every* listed processor."""
        frontiers = [self.flushed.get((loop, processor), -1)
                     for processor in processors]
        return min(frontiers) if frontiers else -1
