"""The metrics registry: named counters, gauges and histograms.

One :class:`MetricsRegistry` is shared by every layer of a simulated
deployment (injected through the :class:`~repro.simulator.Simulator`), so
the kernel, the network fabric, the Storm layer and the Tornado runtime
all publish into a single sink that reports and tests can read.

Instruments are plain Python objects with ``__slots__``; hot paths cache
the instrument once at construction time so an update is a single method
call on a small object, cheap enough to leave always-on.
"""

from __future__ import annotations

import bisect
from typing import Any

#: Default histogram bucket upper bounds (seconds-ish scale: from 1 µs of
#: virtual time up to 100 s, roughly logarithmic).
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """Last-written value (e.g. a queue depth), with a tracked peak."""

    __slots__ = ("name", "value", "peak")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.peak = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self.value - amount)


class Histogram:
    """Fixed-bucket histogram of observed values."""

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total",
                 "min", "max")

    def __init__(self, name: str,
                 bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.bounds = tuple(bounds)
        # One overflow bucket past the last bound.
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket containing quantile ``q`` (0..1)."""
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            seen += bucket_count
            if seen >= rank:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.max
        return self.max


class MetricsRegistry:
    """Get-or-create registry of named instruments."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ---------------------------------------------------------- instruments
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str,
                  bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, bounds)
        return instrument

    # -------------------------------------------------------------- queries
    def snapshot(self) -> dict[str, Any]:
        """Deterministic (sorted, plain-value) view of every instrument."""
        out: dict[str, Any] = {}
        for name in sorted(self._counters):
            out[name] = self._counters[name].value
        for name in sorted(self._gauges):
            gauge = self._gauges[name]
            out[name] = {"value": gauge.value, "peak": gauge.peak}
        for name in sorted(self._histograms):
            histogram = self._histograms[name]
            out[name] = {
                "count": histogram.count,
                "mean": histogram.mean,
                "min": histogram.min if histogram.count else 0.0,
                "max": histogram.max if histogram.count else 0.0,
                "p99": histogram.quantile(0.99),
            }
        return out

    def render(self) -> str:
        """Plain-text metrics table (one ``name  value`` line per
        instrument, sorted by name)."""
        lines = []
        for name, value in self.snapshot().items():
            if isinstance(value, dict):
                detail = " ".join(f"{k}={v:.6g}" for k, v in value.items())
                lines.append(f"{name}  {detail}")
            else:
                lines.append(f"{name}  {value:.6g}")
        return "\n".join(lines)
