"""Observability CLI: recorder overhead and critical-path analysis.

``python -m repro.obs`` (no subcommand) measures the flight recorder's
overhead: the same seeded SSSP workload runs twice — tracing off, then
on — and the wall-clock times, recorded event volume and trace digest
are reported.  The "off" run is the number that matters for production:
it should sit within noise of a build that predates the recorder,
because every hot path guards its instrumentation behind one
``trace.enabled`` check.

``python -m repro.obs critical-path`` runs the workload once with link
tracing on and prints the SnailTrail-style per-iteration critical path
(:mod:`repro.obs.critical_path`): which protocol phases and processor
links end-to-end latency actually waited on.

Usage::

    PYTHONPATH=src python -m repro.obs                  # overhead run
    PYTHONPATH=src python -m repro.obs --duration 2.0
    PYTHONPATH=src python -m repro.obs critical-path [--loop main]
                                                     [--windows N]
                                                     [--json]
"""

from __future__ import annotations

import sys
import time


def _parse_flag(argv: list[str], flag: str, cast, default):
    if flag not in argv:
        return default
    try:
        return cast(argv[argv.index(flag) + 1])
    except (IndexError, ValueError):
        print(f"error: {flag} requires a value", file=sys.stderr)
        raise SystemExit(2)


def _run_once(trace_enabled: bool, duration: float,
              trace_links: bool = False) -> tuple[float, object]:
    from repro.bench.workloads import SMALL, sssp_bundle
    bundle = sssp_bundle(SMALL, trace_enabled=trace_enabled,
                         trace_links=trace_links)
    bundle.feed_all()
    started = time.perf_counter()
    bundle.job.run_for(duration)
    elapsed = time.perf_counter() - started
    return elapsed, bundle.job


def _overhead(argv: list[str]) -> int:
    duration = _parse_flag(argv, "--duration", float, 1.0)
    if duration <= 0.0:
        print("error: --duration must be positive", file=sys.stderr)
        return 2
    baseline, _ = _run_once(False, duration)
    traced, job = _run_once(True, duration)
    overhead = (traced - baseline) / baseline * 100.0 if baseline else 0.0
    print(f"workload: sssp/SMALL, {duration:.2f} virtual seconds")
    print(f"tracing off: {baseline:.3f}s wall")
    print(f"tracing on:  {traced:.3f}s wall "
          f"({overhead:+.1f}% vs off)")
    print(f"events recorded: {job.trace.recorded} "
          f"(retained {len(job.trace)}, evicted {job.trace.evicted})")
    print(f"trace digest: {job.trace.digest()}")
    print("metrics snapshot:")
    print(job.metrics.render())
    return 0


def _critical_path(argv: list[str]) -> int:
    from repro.obs.critical_path import extract_critical_path
    duration = _parse_flag(argv, "--duration", float, 1.0)
    loop = _parse_flag(argv, "--loop", str, "main")
    windows = _parse_flag(argv, "--windows", int, None)
    if duration <= 0.0:
        print("error: --duration must be positive", file=sys.stderr)
        return 2
    _, job = _run_once(True, duration, trace_links=True)
    report = extract_critical_path(job.trace, loop=loop,
                                   max_windows=windows)
    if "--json" in argv:
        print(report.to_json())
    else:
        print(f"workload: sssp/SMALL, {duration:.2f} virtual seconds, "
              f"{job.trace.recorded} events")
        print(report.render())
    return 0 if report.windows else 1


def main(argv: list[str]) -> int:
    if argv and argv[0] == "critical-path":
        return _critical_path(argv[1:])
    return _overhead(argv)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
