"""Measure the flight recorder's overhead.

Runs the same seeded SSSP workload twice — tracing off, then on — and
reports wall-clock times, the event volume recorded and the trace digest.
The "off" run is the number that matters for production: it should sit
within noise of a build that predates the recorder, because every hot
path guards its instrumentation behind one ``trace.enabled`` check.

Usage::

    PYTHONPATH=src python -m repro.obs            # default small run
    PYTHONPATH=src python -m repro.obs --duration 2.0
"""

from __future__ import annotations

import sys
import time


def _run_once(trace_enabled: bool, duration: float) -> tuple[float, object]:
    from repro.bench.workloads import SMALL, sssp_bundle
    bundle = sssp_bundle(SMALL, trace_enabled=trace_enabled)
    bundle.feed_all()
    started = time.perf_counter()
    bundle.job.run_for(duration)
    elapsed = time.perf_counter() - started
    return elapsed, bundle.job


def main(argv: list[str]) -> int:
    duration = 1.0
    if "--duration" in argv:
        try:
            duration = float(argv[argv.index("--duration") + 1])
        except (IndexError, ValueError):
            print("error: --duration requires a number of virtual seconds",
                  file=sys.stderr)
            return 2
    if duration <= 0.0:
        print("error: --duration must be positive", file=sys.stderr)
        return 2
    baseline, _ = _run_once(False, duration)
    traced, job = _run_once(True, duration)
    overhead = (traced - baseline) / baseline * 100.0 if baseline else 0.0
    print(f"workload: sssp/SMALL, {duration:.2f} virtual seconds")
    print(f"tracing off: {baseline:.3f}s wall")
    print(f"tracing on:  {traced:.3f}s wall "
          f"({overhead:+.1f}% vs off)")
    print(f"events recorded: {job.trace.recorded} "
          f"(retained {len(job.trace)}, evicted {job.trace.evicted})")
    print(f"trace digest: {job.trace.digest()}")
    print("metrics snapshot:")
    print(job.metrics.render())
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
