"""SnailTrail-style critical-path extraction over flight-recorder traces.

Per-phase event counts (:mod:`repro.obs.report`) say what the runtime
*did*; they do not say what end-to-end latency *waited on*.  Following
the SnailTrail line of work (PAPERS.md), this module reconstructs, for
every terminated iteration of a loop, the transient critical path: the
single backward chain of activities — protocol phases on processors,
message hops between them — that had to finish for the iteration to
terminate when it did.  Time on that chain is time that directly bounds
iteration latency; time off it is slack.

The activity graph comes straight from the recorded events:

* every event is a node on its actor's timeline (the interval between
  two consecutive events on one actor is the activity *ending at* the
  later event, labelled with that event's ``category.name``);
* every ``net.send`` event (recorded by the fabric when
  ``TornadoConfig.trace_links`` is on) is a communication edge from the
  sender at send time to the receiver at the delivery ``eta``.

For each window ``(T_{k-1}, T_k]`` between consecutive
``progress.terminated`` anchors, the extractor walks backward from the
anchor, at each step following the *latest* dependency — the youngest
preceding event on the current actor, or the youngest message delivery
into it, whichever finished last — and emits the traversed intervals as
:class:`PathSegment` records.  The walk is a pure function of the trace
(ties break on sequence numbers), so same seed ⇒ same path, and the
per-window weight can never exceed the window span by construction.

Transient paths aggregate into criticality scores: the fraction of total
critical-path time spent in each phase (:meth:`CriticalPathReport.
phase_scores`), on each inter-processor link (:meth:`~CriticalPathReport.
link_scores` — the placement refiner's input) and on each actor
(:meth:`~CriticalPathReport.processor_scores` — the migration planner's
input via :meth:`repro.core.master.Master.apply_criticality`).
"""

from __future__ import annotations

import json
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Iterable

from repro.obs.trace import TraceEvent, TraceRecorder

MAIN_LOOP = "main"


@dataclass(frozen=True)
class PathSegment:
    """One interval of the critical path.

    ``kind`` is ``"phase"`` (activity on ``actor`` ending in an event
    labelled ``label``) or ``"link"`` (a message in flight; ``label`` is
    ``"src->dst"`` and ``actor`` the receiving end).
    """

    kind: str
    label: str
    actor: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class WindowPath:
    """The transient critical path of one terminated iteration."""

    iteration: int
    start: float
    end: float
    segments: tuple[PathSegment, ...]

    @property
    def span(self) -> float:
        """Wall (virtual) length of the iteration window."""
        return self.end - self.start

    @property
    def weight(self) -> float:
        """Total critical-path time extracted — ≤ :attr:`span` always."""
        return sum(segment.duration for segment in self.segments)


@dataclass
class CriticalPathReport:
    """Aggregated transient critical paths of one loop."""

    loop: str
    windows: list[WindowPath] = field(default_factory=list)

    @property
    def total_weight(self) -> float:
        return sum(window.weight for window in self.windows)

    def _scores(self, want_kind: str,
                key_of) -> dict:
        total = self.total_weight
        if total <= 0:
            return {}
        tally: dict = {}
        for window in self.windows:
            for segment in window.segments:
                if segment.kind != want_kind:
                    continue
                key = key_of(segment)
                tally[key] = tally.get(key, 0.0) + segment.duration
        return {key: duration / total
                for key, duration in sorted(tally.items(),
                                            key=lambda kv: str(kv[0]))}

    def phase_scores(self) -> dict[str, float]:
        """Fraction of critical-path time per activity label
        (``category.name`` of the event each interval ends at)."""
        return self._scores("phase", lambda seg: seg.label)

    def link_scores(self) -> dict[tuple[str, str], float]:
        """Fraction of critical-path time in flight per ``(src, dst)``
        link — the input to placement refinement
        (:func:`repro.core.placement.refine_affinity`)."""
        return self._scores("link",
                            lambda seg: tuple(seg.label.split("->", 1)))

    def processor_scores(self) -> dict[str, float]:
        """Fraction of critical-path time on each actor (link time is
        the wire's, attributed to no actor) — the input to
        :meth:`repro.core.master.Master.apply_criticality`."""
        return self._scores("phase", lambda seg: seg.actor)

    def top_link(self) -> tuple[str, str] | None:
        """The most critical link, ties broken on the link name."""
        scores = self.link_scores()
        if not scores:
            return None
        return min(scores, key=lambda link: (-scores[link], link))

    def to_json(self) -> str:
        """Deterministic JSON encoding of the scores and window stats
        (the CI shape-check surface)."""
        payload = {
            "loop": self.loop,
            "windows": [{"iteration": w.iteration, "start": w.start,
                         "end": w.end, "span": w.span,
                         "weight": w.weight,
                         "segments": len(w.segments)}
                        for w in self.windows],
            "phase_scores": self.phase_scores(),
            "processor_scores": self.processor_scores(),
            "link_scores": {f"{src}->{dst}": score for (src, dst), score
                            in self.link_scores().items()},
        }
        return json.dumps(payload, sort_keys=True, indent=2)

    def render(self) -> str:
        """Aligned text summary: per-window weights, then the phase and
        link criticality rankings."""
        lines = [f"critical path: loop={self.loop}, "
                 f"{len(self.windows)} window(s), "
                 f"total weight {self.total_weight:.6f}s"]
        for window in self.windows:
            coverage = (window.weight / window.span * 100.0
                        if window.span > 0 else 0.0)
            lines.append(f"  iter {window.iteration:>4}: span "
                         f"{window.span:.6f}s, path {window.weight:.6f}s "
                         f"({coverage:.0f}%), "
                         f"{len(window.segments)} segment(s)")
        phases = self.phase_scores()
        if phases:
            lines.append("phase criticality:")
            for label in sorted(phases, key=lambda k: (-phases[k], k)):
                lines.append(f"  {phases[label]:6.1%}  {label}")
        links = self.link_scores()
        if links:
            lines.append("link criticality:")
            for link in sorted(links, key=lambda k: (-links[k], k)):
                lines.append(f"  {links[link]:6.1%}  "
                             f"{link[0]}->{link[1]}")
        return "\n".join(lines)


class _Timeline:
    """Bisect-able per-actor event index keyed by ``(time, seq)``."""

    def __init__(self) -> None:
        self.keys: list[tuple[float, int]] = []
        self.events: list[TraceEvent] = []

    def add(self, key: tuple[float, int], event: TraceEvent) -> None:
        self.keys.append(key)
        self.events.append(event)

    def sort(self) -> None:
        order = sorted(range(len(self.keys)),
                       key=lambda i: self.keys[i])
        self.keys = [self.keys[i] for i in order]
        self.events = [self.events[i] for i in order]

    def latest_before(self, key: tuple[float, int]
                      ) -> tuple[TraceEvent, tuple[float, int]] | None:
        """Youngest entry with key strictly below ``key``."""
        index = bisect_left(self.keys, key) - 1
        if index < 0:
            return None
        return self.events[index], self.keys[index]


def extract_critical_path(events: TraceRecorder | Iterable[TraceEvent],
                          loop: str = MAIN_LOOP,
                          max_windows: int | None = None
                          ) -> CriticalPathReport:
    """Extract per-iteration transient critical paths for ``loop``.

    ``events`` is a :class:`~repro.obs.trace.TraceRecorder` or any
    iterable of :class:`~repro.obs.trace.TraceEvent` (e.g. a parsed
    tenant slice of a merged dump).  Communication edges require the
    trace to contain ``net.send`` events — run the job with
    ``TornadoConfig(trace_enabled=True, trace_links=True)``; without
    them the path never leaves the anchor's actor.
    """
    ordered = list(events)
    anchors: list[TraceEvent] = []
    locals_of: dict[str, _Timeline] = {}
    inbound_of: dict[str, _Timeline] = {}
    for event in ordered:
        actor = event.actor or "-"
        locals_of.setdefault(actor, _Timeline()).add(
            (event.time, event.seq), event)
        if event.category == "net" and event.name == "send":
            dst = str(event.field("dst"))
            eta = float(event.field("eta", event.time))
            inbound_of.setdefault(dst, _Timeline()).add(
                (eta, event.seq), event)
        elif (event.category == "progress"
                and event.name == "terminated"
                and str(event.field("loop")) == loop):
            anchors.append(event)
    for timeline in locals_of.values():
        timeline.sort()
    for timeline in inbound_of.values():
        timeline.sort()

    report = CriticalPathReport(loop=loop)
    if max_windows is not None:
        anchors = anchors[-max_windows:]
    # One backward step per event is the worst case for a single walk;
    # the cap only guards against a malformed trace (eta <= send time).
    step_cap = 2 * len(ordered) + 16
    previous_end = None
    for anchor in anchors:
        window_start = (previous_end if previous_end is not None
                        else min(event.time for event in ordered))
        previous_end = anchor.time
        segments = _walk_window(anchor, window_start, locals_of,
                                inbound_of, step_cap)
        report.windows.append(WindowPath(
            iteration=int(anchor.field("iteration")),
            start=window_start, end=anchor.time,
            segments=tuple(segments)))
    return report


def _phase_label(event: TraceEvent) -> str:
    return f"{event.category}.{event.name}"


def _walk_window(anchor: TraceEvent, window_start: float,
                 locals_of: dict[str, _Timeline],
                 inbound_of: dict[str, _Timeline],
                 step_cap: int) -> list[PathSegment]:
    """Backward walk from ``anchor`` to ``window_start``; see module
    docstring for the dependency rule."""
    segments: list[PathSegment] = []
    cursor = anchor
    cursor_actor = anchor.actor or "-"
    cursor_key = (anchor.time, anchor.seq)
    for _ in range(step_cap):
        if cursor.time <= window_start:
            break
        local_hit = locals_of[cursor_actor].latest_before(cursor_key)
        inbound = inbound_of.get(cursor_actor)
        comm_hit = (inbound.latest_before(cursor_key)
                    if inbound is not None else None)
        if local_hit is None and comm_hit is None:
            # Trace begins mid-activity (ring eviction): attribute the
            # uncovered head of the window to the activity we are in.
            _emit(segments, "phase", _phase_label(cursor), cursor_actor,
                  window_start, cursor.time)
            break
        comm_key = comm_hit[1] if comm_hit is not None else None
        local_key = local_hit[1] if local_hit is not None else None
        if comm_key is not None and (local_key is None
                                     or comm_key > local_key):
            send, (eta, _seq) = comm_hit
            # Processing on the receiver since the delivery landed...
            _emit(segments, "phase", _phase_label(cursor), cursor_actor,
                  max(eta, window_start), cursor.time)
            if eta <= window_start:
                break
            # ...and the hop itself, back to the sender at send time.
            src = send.actor or "-"
            _emit(segments, "link", f"{src}->{cursor_actor}",
                  cursor_actor, max(send.time, window_start), eta)
            if send.time <= window_start:
                break
            cursor, cursor_actor = send, src
            cursor_key = (send.time, send.seq)
        else:
            previous, previous_key = local_hit
            _emit(segments, "phase", _phase_label(cursor), cursor_actor,
                  max(previous.time, window_start), cursor.time)
            if previous.time <= window_start:
                break
            cursor, cursor_key = previous, previous_key
    return segments


def _emit(segments: list[PathSegment], kind: str, label: str, actor: str,
          start: float, end: float) -> None:
    """Append an interval, merging zero-length ones away and coalescing
    adjacent segments of the same kind/label/actor."""
    if end <= start:
        return
    if segments:
        last = segments[-1]
        if (last.kind == kind and last.label == label
                and last.actor == actor and last.start == end):
            segments[-1] = PathSegment(kind, label, actor, start,
                                       last.end)
            return
    segments.append(PathSegment(kind, label, actor, start, end))
