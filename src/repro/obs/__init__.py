"""Observability: deterministic flight recorder and metrics registry.

``repro.obs`` is the shared instrumentation layer.  A
:class:`TraceRecorder` (typed, bounded ring buffer of events stamped with
virtual time) and a :class:`MetricsRegistry` (named counters, gauges and
histograms) are injected through :class:`repro.simulator.Simulator`, so
the kernel, the network, the Storm layer and the Tornado runtime all
publish into one sink.  Tracing is zero-cost when disabled and
byte-for-byte deterministic when enabled: the same seed produces an
identical trace, which makes the recorder double as a regression oracle.

On top of the recorder sit the analyses: per-iteration protocol phase
tables (:mod:`repro.obs.report`) and SnailTrail-style critical-path
extraction (:mod:`repro.obs.critical_path`).
"""

from repro.obs.critical_path import (CriticalPathReport, PathSegment,
                                     WindowPath, extract_critical_path)
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry)
from repro.obs.report import (merged_phase_counts, phase_counts,
                              render_phase_table, render_tenant_digests,
                              termination_timeline)
from repro.obs.trace import (TraceEvent, TraceRecorder, merge_dumps,
                             merge_named_dumps, parse_dump,
                             parse_dump_line, split_named_dump)

__all__ = [
    "Counter",
    "CriticalPathReport",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PathSegment",
    "TraceEvent",
    "TraceRecorder",
    "WindowPath",
    "extract_critical_path",
    "merge_dumps",
    "merge_named_dumps",
    "merged_phase_counts",
    "parse_dump",
    "parse_dump_line",
    "phase_counts",
    "render_phase_table",
    "render_tenant_digests",
    "split_named_dump",
    "termination_timeline",
]
