"""Observability: deterministic flight recorder and metrics registry.

``repro.obs`` is the shared instrumentation layer.  A
:class:`TraceRecorder` (typed, bounded ring buffer of events stamped with
virtual time) and a :class:`MetricsRegistry` (named counters, gauges and
histograms) are injected through :class:`repro.simulator.Simulator`, so
the kernel, the network, the Storm layer and the Tornado runtime all
publish into one sink.  Tracing is zero-cost when disabled and
byte-for-byte deterministic when enabled: the same seed produces an
identical trace, which makes the recorder double as a regression oracle.
"""

from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry)
from repro.obs.report import (phase_counts, render_phase_table,
                              render_tenant_digests, termination_timeline)
from repro.obs.trace import (TraceEvent, TraceRecorder, merge_dumps,
                             merge_named_dumps)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceEvent",
    "TraceRecorder",
    "merge_dumps",
    "merge_named_dumps",
    "phase_counts",
    "render_phase_table",
    "render_tenant_digests",
    "termination_timeline",
]
