"""Reporting over the flight recorder: per-iteration protocol tables.

The Tornado runtime records one ``protocol.*`` event per UPDATE gathered,
PREPARE sent, ACK sent and COMMIT applied (see
:mod:`repro.core.processor`), each stamped with its loop and iteration.
This module folds those events into the per-iteration phase counts that
explain the paper's Fig. 8c/8d behaviour — which phase a loop is stuck in
during an outage — without any external counter.
"""

from __future__ import annotations

from typing import Iterable

from repro.obs.trace import (TraceEvent, TraceRecorder, parse_dump,
                             split_named_dump)

PHASES = ("update", "prepare", "ack", "commit")


def phase_counts(recorder: TraceRecorder | Iterable[TraceEvent],
                 loop: str | None = None
                 ) -> dict[tuple[str, int], dict[str, int]]:
    """Protocol-phase event counts keyed by ``(loop, iteration)``.

    Accepts a live :class:`TraceRecorder` or any iterable of
    :class:`TraceEvent` (e.g. one tenant's slice of a merged dump, via
    :func:`merged_phase_counts`).  Loop names are only unique *within*
    one recorder's stream — counting a merged multi-tenant dump directly
    would fold every tenant's ``main`` loop into one row, so merged
    dumps must be split per tenant first (:func:`merged_phase_counts`
    does exactly that).

    Only events still retained by the ring are counted; under sustained
    load the table therefore describes the *recent* window, which is what
    a flight recorder is for.
    """
    if isinstance(recorder, TraceRecorder):
        events: Iterable[TraceEvent] = recorder.select(category="protocol")
    else:
        events = recorder
    table: dict[tuple[str, int], dict[str, int]] = {}
    for event in events:
        if event.category != "protocol" or event.name not in PHASES:
            continue
        event_loop = event.field("loop")
        if event_loop is not None:
            event_loop = str(event_loop)
        if loop is not None and event_loop != loop:
            continue
        iteration = event.field("iteration")
        if event_loop is None or iteration is None:
            continue
        key = (event_loop, int(iteration))
        row = table.get(key)
        if row is None:
            row = table[key] = {phase: 0 for phase in PHASES}
        row[event.name] += 1
    return dict(sorted(table.items()))


def merged_phase_counts(merged_dump: str, tenant: str | None = None,
                        loop: str | None = None
                        ) -> dict[tuple[str, str, int], dict[str, int]]:
    """Protocol-phase counts over a merged multi-tenant dump
    (:func:`repro.obs.trace.merge_named_dumps`), keyed by
    ``(tenant, loop, iteration)``.

    The tenant prefix partitions the lines *before* the loop filter is
    applied, so the two filters compose: ``loop="main"`` counts each
    tenant's own main loop separately instead of bleeding all tenants'
    phases into one row.
    """
    table: dict[tuple[str, str, int], dict[str, int]] = {}
    for name, dump in split_named_dump(merged_dump).items():
        if tenant is not None and name != tenant:
            continue
        for key, row in phase_counts(parse_dump(dump), loop=loop).items():
            table[(name,) + key] = row
    return dict(sorted(table.items()))


def render_phase_table(recorder: TraceRecorder,
                       loop: str | None = None) -> str:
    """Aligned text table of :func:`phase_counts`."""
    table = phase_counts(recorder, loop)
    header = ["loop", "iteration", "updates", "prepares", "acks",
              "commits"]
    rows = [[key[0], str(key[1])] + [str(row[phase]) for phase in PHASES]
            for key, row in table.items()]
    widths = [max(len(header[i]), *(len(r[i]) for r in rows))
              if rows else len(header[i]) for i in range(len(header))]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths)),
             "  ".join("-" * w for w in widths)]
    lines.extend("  ".join(cell.ljust(w) for cell, w in zip(row, widths))
                 for row in rows)
    return "\n".join(lines)


def render_tenant_digests(streams: dict[str, TraceRecorder]) -> str:
    """Aligned text table of per-tenant flight-recorder digests and event
    counts — the JobManager's isolation-report view."""
    header = ["tenant", "events", "digest"]
    rows = [[name, str(streams[name].recorded), streams[name].digest()]
            for name in sorted(streams)]
    widths = [max(len(header[i]), *(len(r[i]) for r in rows))
              if rows else len(header[i]) for i in range(len(header))]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths)),
             "  ".join("-" * w for w in widths)]
    lines.extend("  ".join(cell.ljust(w) for cell, w in zip(row, widths))
                 for row in rows)
    return "\n".join(lines)


def termination_timeline(recorder: TraceRecorder, loop: str | None = None
                         ) -> list[tuple[str, int, float]]:
    """(loop, iteration, virtual time) for every recorded iteration
    termination, in record order — the frontier's timeline."""
    out = []
    for event in recorder.select(category="progress", name="terminated"):
        event_loop = str(event.field("loop"))
        if loop is not None and event_loop != loop:
            continue
        out.append((event_loop, int(event.field("iteration")),
                    event.time))
    return out
