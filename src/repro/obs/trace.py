"""The flight recorder: a deterministic, bounded trace of runtime events.

A :class:`TraceRecorder` is a typed ring buffer of :class:`TraceEvent`
records stamped with *virtual* time.  Because the simulator is
deterministic, the recorder is too: two runs with the same seed produce
byte-for-byte identical dumps, which makes the trace double as a
regression oracle for the protocol (compare :meth:`TraceRecorder.digest`
across runs).

Design constraints:

* **Zero cost when disabled.**  Hot paths guard every call with
  ``if trace.enabled:`` — a single attribute load and branch — so a job
  run with tracing off pays nothing beyond that check.
* **Bounded memory.**  The buffer is a ring: once ``capacity`` events are
  held, the oldest is evicted (and counted in :attr:`TraceRecorder.evicted`)
  so sustained runs cannot exhaust memory.
* **Determinism.**  Events carry only virtual time, a recorder-local
  sequence number and plain values; nothing derived from object identity,
  wall clock or hash randomisation ever enters an event.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from typing import Any, Callable, Iterable, Iterator


def _fmt(value: Any) -> str:
    """Canonical, deterministic text form of a field value."""
    if isinstance(value, float):
        return repr(value)
    return str(value)


class TraceEvent:
    """One recorded occurrence.

    ``fields`` is a tuple of ``(key, value)`` pairs sorted by key, so the
    textual form of an event never depends on keyword-argument order.
    """

    __slots__ = ("time", "seq", "category", "name", "actor", "fields")

    def __init__(self, time: float, seq: int, category: str, name: str,
                 actor: str, fields: tuple[tuple[str, Any], ...]):
        self.time = time
        self.seq = seq
        self.category = category
        self.name = name
        self.actor = actor
        self.fields = fields

    def field(self, key: str, default: Any = None) -> Any:
        for k, v in self.fields:
            if k == key:
                return v
        return default

    def line(self) -> str:
        """Canonical single-line text form (what :meth:`TraceRecorder.dump`
        emits)."""
        parts = [f"{self.seq:08d}", _fmt(self.time),
                 f"{self.category}.{self.name}", self.actor or "-"]
        parts.extend(f"{k}={_fmt(v)}" for k, v in self.fields)
        return " ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceEvent({self.line()})"


class TraceRecorder:
    """Bounded ring buffer of :class:`TraceEvent` records.

    Parameters
    ----------
    capacity:
        Maximum number of events retained; older events are evicted.
    enabled:
        Initial state of the recording guard.  Call sites must check
        :attr:`enabled` before doing any work to build an event.
    """

    def __init__(self, capacity: int = 65536, enabled: bool = True) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.enabled = enabled
        self._ring: deque[TraceEvent] = deque(maxlen=capacity)
        self._seq = 0
        self.evicted = 0
        self.recorded = 0

    # ------------------------------------------------------------ recording
    def record(self, time: float, category: str, name: str,
               actor: str = "", **fields: Any) -> None:
        """Append one event.  No-op when disabled (but prefer guarding the
        call site with ``if recorder.enabled:`` so argument construction is
        skipped too)."""
        if not self.enabled:
            return
        if len(self._ring) == self.capacity:
            self.evicted += 1
        event = TraceEvent(time, self._seq, category, name, actor,
                           tuple(sorted(fields.items())))
        self._seq += 1
        self.recorded += 1
        self._ring.append(event)

    def clear(self) -> None:
        self._ring.clear()
        self._seq = 0
        self.evicted = 0
        self.recorded = 0

    # -------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._ring)

    @property
    def events(self) -> list[TraceEvent]:
        return list(self._ring)

    def select(self, category: str | None = None,
               name: str | None = None,
               predicate: Callable[[TraceEvent], bool] | None = None
               ) -> list[TraceEvent]:
        """Events matching the given category/name/predicate filters."""
        out = []
        for event in self._ring:
            if category is not None and event.category != category:
                continue
            if name is not None and event.name != name:
                continue
            if predicate is not None and not predicate(event):
                continue
            out.append(event)
        return out

    def counts(self) -> dict[str, int]:
        """Event counts keyed by ``category.name`` (sorted)."""
        tally: dict[str, int] = {}
        for event in self._ring:
            key = f"{event.category}.{event.name}"
            tally[key] = tally.get(key, 0) + 1
        return dict(sorted(tally.items()))

    def phase_counts(self, categories: tuple[str, ...] = ("protocol",)
                     ) -> dict[str, int]:
        """Per-loop protocol-phase totals keyed ``category.name:loop`` —
        the flight-recorder side of the live-vs-sim cross-check.  Only
        category, name and the ``loop`` field enter the key: timestamps,
        sequence numbers and actors are excluded deliberately, because
        the live backend's arrival interleaving (and its Lamport-derived
        clock) is racy while the per-phase totals are not."""
        tally: dict[str, int] = {}
        for event in self._ring:
            if event.category not in categories:
                continue
            loop = event.field("loop")
            key = f"{event.category}.{event.name}"
            if loop is not None:
                key = f"{key}:{loop}"
            tally[key] = tally.get(key, 0) + 1
        return dict(sorted(tally.items()))

    # ---------------------------------------------------------------- dumps
    def dump(self) -> str:
        """Canonical text dump: one line per retained event.  Two runs with
        the same seed produce byte-identical dumps."""
        return "\n".join(event.line() for event in self._ring)

    def digest(self) -> str:
        """SHA-256 over :meth:`dump` — a compact determinism fingerprint."""
        return hashlib.sha256(self.dump().encode("utf-8")).hexdigest()

    def to_chrome_trace(self) -> list[dict[str, Any]]:
        """Events in Chrome ``trace_event`` format (load via
        ``chrome://tracing`` or https://ui.perfetto.dev).  Each actor maps
        to one thread of one process; every event is an instant."""
        actors = sorted({event.actor or "-" for event in self._ring})
        tids = {actor: index for index, actor in enumerate(actors)}
        out: list[dict[str, Any]] = [
            {"ph": "M", "pid": 0, "tid": tid, "name": "thread_name",
             "args": {"name": actor}}
            for actor, tid in sorted(tids.items(), key=lambda kv: kv[1])]
        # Ring order is record order, which the live backend's
        # Lamport-derived clock does not keep monotone; tracing UIs
        # require non-decreasing timestamps, so sort explicitly (seq
        # breaks ties deterministically).
        for event in sorted(self._ring,
                            key=lambda event: (event.time, event.seq)):
            out.append({
                "ph": "i",
                "s": "t",
                "pid": 0,
                "tid": tids[event.actor or "-"],
                # Virtual seconds -> microseconds, the unit tracing UIs use.
                "ts": event.time * 1e6,
                "cat": event.category,
                "name": f"{event.category}.{event.name}",
                "args": dict(event.fields),
            })
        return out

    def chrome_trace_json(self) -> str:
        """Deterministic JSON encoding of :meth:`to_chrome_trace`."""
        return json.dumps({"traceEvents": self.to_chrome_trace()},
                          sort_keys=True, separators=(",", ":"),
                          default=str)

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.chrome_trace_json())


def parse_dump_line(line: str) -> TraceEvent:
    """Parse one canonical dump line (see :meth:`TraceEvent.line`) back
    into a :class:`TraceEvent`.  Field values come back as strings —
    coerce at the use site (``int(event.field("iteration"))``).  Only
    round-trips values whose text form contains no spaces, which holds
    for every event the runtime records."""
    parts = line.split(" ")
    if len(parts) < 4 or "." not in parts[2]:
        raise ValueError(f"not a trace dump line: {line!r}")
    category, name = parts[2].split(".", 1)
    fields = []
    for part in parts[4:]:
        key, sep, value = part.partition("=")
        if not sep:
            raise ValueError(f"malformed field {part!r} in {line!r}")
        fields.append((key, value))
    return TraceEvent(time=float(parts[1]), seq=int(parts[0]),
                      category=category, name=name,
                      actor="" if parts[3] == "-" else parts[3],
                      fields=tuple(fields))


def parse_dump(dump: str) -> list[TraceEvent]:
    """Parse a full :meth:`TraceRecorder.dump` blob."""
    return [parse_dump_line(line) for line in dump.split("\n") if line]


def split_named_dump(merged: str) -> dict[str, str]:
    """Invert :func:`merge_named_dumps`: split a merged multi-tenant
    dump back into per-tenant dump blobs keyed by stream name.  Each
    returned blob is byte-identical to the tenant's own
    :meth:`TraceRecorder.dump`, so per-tenant digests survive the round
    trip."""
    sections: dict[str, list[str]] = {}
    for line in merged.split("\n"):
        if not line:
            continue
        name, sep, rest = line.partition("|")
        if not sep:
            raise ValueError(f"line without stream prefix: {line!r}")
        sections.setdefault(name, []).append(rest)
    return {name: "\n".join(lines) for name, lines in sections.items()}


def merge_dumps(recorders: Iterable[TraceRecorder]) -> str:
    """Concatenate several recorders' dumps (e.g. one per job) into one
    deterministic blob."""
    return "\n--\n".join(recorder.dump() for recorder in recorders)


def merge_named_dumps(streams: dict[str, TraceRecorder]) -> str:
    """Concatenate per-tenant recorder dumps, each line prefixed with its
    stream name, in sorted stream order — the JobManager's combined
    flight-recorder view.  Per-stream slices of the result are exactly
    the tenant's own dump, so the merged blob preserves each tenant's
    digest oracle."""
    sections = []
    for name in sorted(streams):
        dump = streams[name].dump()
        lines = dump.split("\n") if dump else []
        sections.append("\n".join(f"{name}|{line}" for line in lines))
    return "\n".join(sections)
