"""Tornado (SIGMOD 2016) reproduction.

Real-time iterative analysis over evolving data: a main loop maintains an
approximation of the answer while the stream evolves; branch loops fork
from it on demand and run the exact method to its fixed point, converging
quickly because they start near it.  See :mod:`repro.core` for the
execution model and the README for a tour.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
