"""Single-Source Shortest Path over a retractable edge stream.

The vertex program generalises the paper's Appendix-B pseudo code: each
vertex keeps, per producer, the best offer it has received
(``source_lengths``), so both improvements *and* retractions converge —
when an edge is deleted, the producer sends an infinite offer and the
consumer recomputes its distance from the remaining offers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from repro.core.dsl import VectorSpec
from repro.core.vertex import VertexContext, VertexProgram, replace_update
from repro.streams.model import ADD_EDGE, REMOVE_EDGE

INF = math.inf


@dataclass
class SSSPValue:
    """Vertex state: current distance plus supporting book-keeping."""

    distance: float = INF
    #: best offer per producer (already includes the edge weight)
    source_lengths: dict[Any, float] = field(default_factory=dict)
    #: out-edge weights per target
    edge_weights: dict[Any, float] = field(default_factory=dict)
    #: targets removed since the last scatter, owed a retraction
    retracted: set = field(default_factory=set)


class SSSPProgram(VertexProgram):
    """Distance = min over producers of (their distance + edge weight)."""

    # Gather replaces the per-producer offer slot, so only the newest
    # offer in a dispatch window matters (min would swallow retractions:
    # an INF offer after an edge delete must not lose to a stale one).
    update_combiner = staticmethod(replace_update)

    # Offers are plain floats (INF included), so the columnar wire may
    # pack them into a float64 column; the per-instance source/cap stay
    # scalar concerns — the wire pack only consults the dtype.
    vector_spec = VectorSpec(reduce="min", extend="add", dtype="float64")

    def __init__(self, source: Any, max_distance: float = INF) -> None:
        """``max_distance`` caps path lengths: offers at or above it count
        as unreachable.  Set it (e.g. to #vertices × max weight) when the
        stream deletes edges on a cyclic graph — it is the classic fix for
        distance-vector count-to-infinity."""
        self.source = source
        self.max_distance = max_distance

    def init(self, ctx: VertexContext) -> None:
        distance = 0.0 if ctx.vertex_id == self.source else INF
        ctx.value = SSSPValue(distance=distance)

    # --------------------------------------------------------------- gather
    def gather(self, ctx: VertexContext, source: Any, delta: Any) -> bool:
        value: SSSPValue = ctx.value
        if source is None:
            return self._gather_input(ctx, value, delta)
        # Producer update: `delta` is the offered distance through it.
        offer = float(delta)
        if math.isinf(offer):
            value.source_lengths.pop(source, None)
        else:
            value.source_lengths[source] = offer
        return self._recompute(ctx, value)

    def _gather_input(self, ctx: VertexContext, value: SSSPValue,
                      delta: Any) -> bool:
        _u, v, w = delta.payload
        if delta.kind == ADD_EDGE:
            ctx.add_target(v)
            value.edge_weights[v] = w
            value.retracted.discard(v)
            # A (re)announcement of our distance is owed to the new target.
            return not math.isinf(value.distance)
        if delta.kind == REMOVE_EDGE:
            ctx.remove_target(v)
            value.edge_weights.pop(v, None)
            value.retracted.add(v)
            return True
        return False

    def _recompute(self, ctx: VertexContext, value: SSSPValue) -> bool:
        if ctx.vertex_id == self.source:
            best = 0.0
        else:
            best = min(value.source_lengths.values(), default=INF)
            if best >= self.max_distance:
                best = INF
        if best != value.distance:
            value.distance = best
            return True
        return False

    # -------------------------------------------------------------- scatter
    def scatter(self, ctx: VertexContext) -> None:
        value: SSSPValue = ctx.value
        for target in value.retracted:
            ctx.emit(target, INF)
        value.retracted = set()
        for target in ctx.targets:
            if math.isinf(value.distance):
                # Our offers are void; consumers must drop their slots.
                ctx.emit(target, INF)
            else:
                weight = value.edge_weights.get(target, 1.0)
                ctx.emit(target, value.distance + weight)

    def snapshot_value(self, value: SSSPValue) -> SSSPValue:
        return SSSPValue(value.distance, dict(value.source_lengths),
                         dict(value.edge_weights), set(value.retracted))


def reference_sssp(edges: list[tuple], source: Any) -> dict[Any, float]:
    """Dijkstra on a static edge list — the oracle used by tests and
    benchmark shape checks."""
    import heapq

    adjacency: dict[Any, list[tuple[Any, float]]] = {}
    vertices = set()
    for edge in edges:
        u, v, w = edge if len(edge) == 3 else (*edge, 1.0)
        adjacency.setdefault(u, []).append((v, float(w)))
        vertices.add(u)
        vertices.add(v)
    distances = {vertex: INF for vertex in vertices}
    if source not in distances:
        distances[source] = 0.0
        return distances
    distances[source] = 0.0
    heap = [(0.0, repr(source), source)]
    done = set()
    while heap:
        dist, _key, vertex = heapq.heappop(heap)
        if vertex in done:
            continue
        done.add(vertex)
        for target, weight in adjacency.get(vertex, []):
            candidate = dist + weight
            if candidate < distances[target]:
                distances[target] = candidate
                heapq.heappush(heap, (candidate, repr(target), target))
    return distances
