"""Workload implementations: vertex programs, routers and oracles."""

from repro.algorithms.components import (ComponentValue,
                                         ConnectedComponentsProgram,
                                         reference_components)
from repro.algorithms.graph_common import EdgeStreamRouter, edge_parts
from repro.algorithms.kmeans import (KMeansProgram, PointRouter,
                                     reference_kmeans)
from repro.algorithms.logreg import logreg_application
from repro.algorithms.pagerank import (PageRankProgram, PageRankValue,
                                       reference_pagerank)
from repro.algorithms.schedules import (Adadelta, Adagrad, BoldDriver,
                                        DescentSchedule, StaticRate)
from repro.algorithms.sgd import (HingeLoss, Instance, InstanceRouter,
                                  LogisticLoss, Loss, SGDProgram)
from repro.algorithms.sssp import SSSPProgram, SSSPValue, reference_sssp
from repro.algorithms.svm import svm_application

__all__ = [
    "Adadelta",
    "Adagrad",
    "BoldDriver",
    "ComponentValue",
    "ConnectedComponentsProgram",
    "DescentSchedule",
    "EdgeStreamRouter",
    "HingeLoss",
    "Instance",
    "InstanceRouter",
    "KMeansProgram",
    "LogisticLoss",
    "Loss",
    "PageRankProgram",
    "PageRankValue",
    "PointRouter",
    "SGDProgram",
    "SSSPProgram",
    "SSSPValue",
    "StaticRate",
    "edge_parts",
    "logreg_application",
    "reference_components",
    "reference_kmeans",
    "reference_pagerank",
    "reference_sssp",
    "svm_application",
]
