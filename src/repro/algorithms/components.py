"""Connected components by min-label propagation (insert-only streams).

Labels only ever decrease, so the algorithm is monotone and safe under any
asynchrony.  Edge deletion is *not* supported: under deletions two vertices
can sustain each other's stale labels forever (the classic zombie-label
problem), which needs recomputation machinery the paper does not describe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.vertex import VertexContext, VertexProgram
from repro.errors import ReproError
from repro.streams.model import ADD_EDGE, REMOVE_EDGE


@dataclass
class ComponentValue:
    label: Any = None
    offers: dict[Any, Any] = field(default_factory=dict)


class ConnectedComponentsProgram(VertexProgram):
    """Label(v) = min(v, labels offered by neighbours); requires the
    undirected edge router so offers flow both ways."""

    def init(self, ctx: VertexContext) -> None:
        ctx.value = ComponentValue(label=ctx.vertex_id)

    def gather(self, ctx: VertexContext, source: Any, delta: Any) -> bool:
        value: ComponentValue = ctx.value
        if source is None:
            if delta.kind == REMOVE_EDGE:
                raise ReproError(
                    "connected components does not support edge deletion")
            if delta.kind == ADD_EDGE:
                _u, v, _w = delta.payload
                ctx.add_target(v)
                return True  # owe the new neighbour our label
            return False
        offered = delta
        value.offers[source] = offered
        if offered < value.label:
            value.label = offered
            return True
        return False

    def scatter(self, ctx: VertexContext) -> None:
        ctx.emit_all(ctx.value.label)

    def snapshot_value(self, value: ComponentValue) -> ComponentValue:
        return ComponentValue(value.label, dict(value.offers))


def reference_components(edges: list[tuple]) -> dict[Any, Any]:
    """Union-find oracle: vertex -> min vertex id of its component."""
    parent: dict[Any, Any] = {}

    def find(x: Any) -> Any:
        parent.setdefault(x, x)
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for edge in edges:
        u, v = edge[0], edge[1]
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[max(ru, rv)] = min(ru, rv)
    return {vertex: find(vertex) for vertex in parent}
