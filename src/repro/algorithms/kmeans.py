"""KMeans (Lloyd's algorithm) over a point stream.

Topology: K ``centroid`` vertices and ``n_shards`` shard vertices holding
the points.  Centroids scatter their positions; each shard re-assigns *all*
of its points and scatters per-centroid partial sums; centroids recompute
their means.  The full rescan is intrinsic to KMeans — which is why the
main loop's approximation barely helps this workload (paper Fig. 5c): the
per-iteration cost is proportional to the number of points regardless of
how good the initial centroids are.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Iterable

import numpy as np

from repro.core.vertex import Delta, VertexContext, VertexProgram
from repro.streams.model import ADD_POINT, StreamTuple

SEED_CENTROID = "seed_centroid"


def centroid_id(index: int) -> tuple[str, int]:
    return ("centroid", index)


def shard_id(index: int) -> tuple[str, int]:
    return ("shard", index)


@dataclass
class CentroidValue:
    position: np.ndarray
    partials: dict[Any, tuple[np.ndarray, int]] = field(default_factory=dict)


@dataclass
class ShardValue:
    points: list[np.ndarray] = field(default_factory=list)
    centroids: dict[Any, np.ndarray] = field(default_factory=dict)
    pending_inputs: int = 0


class KMeansProgram(VertexProgram):
    """Distributed Lloyd iterations with tolerance-based quiescence."""

    def __init__(self, k: int, n_shards: int, dim: int,
                 tolerance: float = 1e-3, input_batch: int = 16,
                 point_cost: float = 5e-7) -> None:
        if k < 1 or n_shards < 1:
            raise ValueError("k and n_shards must be >= 1")
        self.k = k
        self.n_shards = n_shards
        self.dim = dim
        self.tolerance = tolerance
        self.input_batch = input_batch
        self.point_cost = point_cost

    def init(self, ctx: VertexContext) -> None:
        tag, _index = ctx.vertex_id
        if tag == "centroid":
            ctx.value = CentroidValue(position=np.zeros(self.dim))
            for index in range(self.n_shards):
                ctx.add_target(shard_id(index))
        else:
            ctx.value = ShardValue()
            for index in range(self.k):
                ctx.add_target(centroid_id(index))

    # --------------------------------------------------------------- gather
    def gather(self, ctx: VertexContext, source: Any, delta: Any) -> bool:
        tag, _index = ctx.vertex_id
        if tag == "centroid":
            return self._gather_centroid(ctx, source, delta)
        return self._gather_shard(ctx, source, delta)

    def _gather_centroid(self, ctx: VertexContext, source: Any,
                         delta: Any) -> bool:
        value: CentroidValue = ctx.value
        if source is None:
            if delta.kind == SEED_CENTROID:
                value.position = np.asarray(delta.payload, dtype=float)
                return True
            return False
        partial_sum, count = delta
        value.partials[source] = (np.asarray(partial_sum), int(count))
        total = sum(count for _s, count in value.partials.values())
        if total == 0:
            return False
        mean = sum(np.asarray(s) for s, _c in value.partials.values()) / total
        moved = float(np.linalg.norm(mean - value.position))
        if moved > self.tolerance:
            value.position = mean
            return True
        return False

    def _gather_shard(self, ctx: VertexContext, source: Any,
                      delta: Any) -> bool:
        value: ShardValue = ctx.value
        if source is None:
            if delta.kind != ADD_POINT:
                return False
            value.points.append(np.asarray(delta.payload, dtype=float))
            value.pending_inputs += 1
            if value.pending_inputs >= self.input_batch:
                value.pending_inputs = 0
                return bool(value.centroids)
            return False
        value.centroids[source] = np.asarray(delta)
        return bool(value.points)

    # -------------------------------------------------------------- scatter
    def scatter(self, ctx: VertexContext) -> None:
        tag, _index = ctx.vertex_id
        if tag == "centroid":
            ctx.emit_all(ctx.value.position.copy())
            return
        value: ShardValue = ctx.value
        if not value.centroids or not value.points:
            return
        ids = sorted(value.centroids)
        matrix = np.stack([value.centroids[c] for c in ids])
        points = np.stack(value.points)
        # Assign every point to its nearest centroid (the full rescan).
        distances = ((points[:, None, :] - matrix[None, :, :]) ** 2).sum(
            axis=2)
        nearest = distances.argmin(axis=1)
        for slot, cid in enumerate(ids):
            mask = nearest == slot
            count = int(mask.sum())
            total = (points[mask].sum(axis=0) if count
                     else np.zeros(self.dim))
            ctx.emit(cid, (total, count))

    # ----------------------------------------------------------------- cost
    def gather_cost(self, ctx: VertexContext, source: Any,
                    delta: Any) -> float | None:
        tag, _index = ctx.vertex_id
        if tag == "shard" and source is not None:
            # Receiving a centroid position triggers the full rescan.
            return 5e-6 + self.point_cost * len(ctx.value.points) * self.dim
        return None

    def activate_on_fork(self, ctx: VertexContext,
                         recently_updated: bool) -> bool:
        # Every branch iteration rescans anyway; anchor on the centroids.
        tag, _index = ctx.vertex_id
        return tag == "centroid" or recently_updated

    def snapshot_value(self, value: Any) -> Any:
        """Structural copy sharing the immutable point arrays."""
        if isinstance(value, CentroidValue):
            return CentroidValue(value.position.copy(),
                                 {s: (p.copy(), c)
                                  for s, (p, c) in value.partials.items()})
        if isinstance(value, ShardValue):
            return ShardValue(list(value.points),
                              {c: p.copy()
                               for c, p in value.centroids.items()},
                              value.pending_inputs)
        return copy.deepcopy(value)


class PointRouter:
    """Routes points round-robin to shards; seeds the centroids once."""

    def __init__(self, k: int, n_shards: int,
                 initial_centroids: list) -> None:
        if len(initial_centroids) != k:
            raise ValueError("need exactly k initial centroids")
        self.k = k
        self.n_shards = n_shards
        self.initial_centroids = [np.asarray(c, dtype=float)
                                  for c in initial_centroids]
        self._next = 0
        self._seeded = False

    def route(self, tup: StreamTuple) -> Iterable[tuple[Any, Delta]]:
        if tup.kind != ADD_POINT:
            return
        if not self._seeded:
            self._seeded = True
            for index, position in enumerate(self.initial_centroids):
                yield centroid_id(index), Delta(SEED_CENTROID, position)
        target = shard_id(self._next % self.n_shards)
        self._next += 1
        yield target, Delta(ADD_POINT, tup.payload, tup.weight)


def reference_kmeans(points: list, initial_centroids: list,
                     iterations: int = 100,
                     tolerance: float = 1e-6) -> np.ndarray:
    """Plain Lloyd's algorithm — the oracle for tests and benches."""
    data = np.stack([np.asarray(p, dtype=float) for p in points])
    centroids = np.stack([np.asarray(c, dtype=float)
                          for c in initial_centroids])
    for _ in range(iterations):
        distances = ((data[:, None, :] - centroids[None, :, :]) ** 2).sum(
            axis=2)
        nearest = distances.argmin(axis=1)
        updated = centroids.copy()
        for slot in range(len(centroids)):
            mask = nearest == slot
            if mask.any():
                updated[slot] = data[mask].mean(axis=0)
        if np.linalg.norm(updated - centroids) < tolerance:
            return updated
        centroids = updated
    return centroids
