"""Logistic regression workload: SGD with logistic loss (paper Table 1,
PubMed relevance prediction)."""

from __future__ import annotations

from typing import Callable

from repro.algorithms.schedules import BoldDriver, DescentSchedule
from repro.algorithms.sgd import InstanceRouter, LogisticLoss, SGDProgram
from repro.core.vertex import Application


def logreg_application(dim: int, n_samplers: int = 4, l2: float = 1e-4,
                       schedule_factory: Callable[[], DescentSchedule]
                       | None = None,
                       **sgd_kwargs) -> Application:
    """Build a ready-to-run LR application."""
    if schedule_factory is None:
        schedule_factory = lambda: BoldDriver(0.1)  # noqa: E731
    program = SGDProgram(LogisticLoss(l2=l2), dim, n_samplers,
                         schedule_factory, **sgd_kwargs)
    return Application(program, InstanceRouter(n_samplers), name="logreg")
