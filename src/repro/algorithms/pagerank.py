"""PageRank over a retractable edge stream.

Uses the unnormalised fixed-point form ``PR(v) = (1-d) + d·Σ PR(u)/deg(u)``
(per-source contribution slots make gathering idempotent and retractable:
a deleted edge's producer sends a zero contribution).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import math

from repro.core.dsl import VectorSpec
from repro.core.vertex import VertexContext, VertexProgram, replace_update
from repro.streams.model import ADD_EDGE, REMOVE_EDGE


@dataclass
class PageRankValue:
    rank: float
    contribs: dict[Any, float] = field(default_factory=dict)
    retracted: set = field(default_factory=set)


class PageRankProgram(VertexProgram):
    """Damped PageRank with tolerance-based quiescence."""

    # Contributions live in per-source slots; a window's newest
    # contribution from a producer supersedes its earlier ones.
    update_combiner = staticmethod(replace_update)

    # Contribution shares are plain floats; "sum" has no columnar gather
    # kernel, but the wire pack only needs the dtype to type the value
    # column (retraction zeros are floats too, so they pack).
    vector_spec = VectorSpec(reduce="sum", extend="copy", dtype="float64")

    def __init__(self, damping: float = 0.85,
                 tolerance: float = 1e-3) -> None:
        if not 0.0 < damping < 1.0:
            raise ValueError(f"damping must be in (0, 1), got {damping}")
        self.damping = damping
        self.tolerance = tolerance

    def init(self, ctx: VertexContext) -> None:
        ctx.value = PageRankValue(rank=1.0 - self.damping)

    def gather(self, ctx: VertexContext, source: Any, delta: Any) -> bool:
        value: PageRankValue = ctx.value
        if source is None:
            _u, v, _w = delta.payload
            if delta.kind == ADD_EDGE:
                ctx.add_target(v)
                value.retracted.discard(v)
                # Out-degree changed: every target's share changes.
                return True
            if delta.kind == REMOVE_EDGE:
                ctx.remove_target(v)
                value.retracted.add(v)
                return True
            return False
        contribution = float(delta)
        if contribution <= 0.0:
            value.contribs.pop(source, None)
        else:
            value.contribs[source] = contribution
        # fsum: the exact sum rounded once, so the rank is independent of
        # the order contributions arrived in (plain sum is not, which
        # would make converged ranks depend on message interleaving).
        new_rank = (1.0 - self.damping
                    + self.damping * math.fsum(value.contribs.values()))
        if abs(new_rank - value.rank) > self.tolerance:
            value.rank = new_rank
            return True
        return False

    def scatter(self, ctx: VertexContext) -> None:
        value: PageRankValue = ctx.value
        for target in value.retracted:
            ctx.emit(target, 0.0)
        value.retracted = set()
        targets = ctx.targets
        if not targets:
            return
        share = value.rank / len(targets)
        for target in targets:
            ctx.emit(target, share)

    def snapshot_value(self, value: PageRankValue) -> PageRankValue:
        return PageRankValue(value.rank, dict(value.contribs),
                             set(value.retracted))


def reference_pagerank(edges: list[tuple], damping: float = 0.85,
                       iterations: int = 200) -> dict[Any, float]:
    """Power iteration on the same fixed-point equation (dangling vertices
    contribute nothing), used as the oracle in tests and benches."""
    # Set semantics: parallel edges collapse, matching the vertex program
    # (a target is either present or absent).
    targets: dict[Any, set[Any]] = {}
    vertices = set()
    for edge in edges:
        u, v = edge[0], edge[1]
        targets.setdefault(u, set()).add(v)
        vertices.add(u)
        vertices.add(v)
    ranks = {vertex: 1.0 - damping for vertex in vertices}
    for _ in range(iterations):
        incoming = {vertex: 0.0 for vertex in vertices}
        for u, outs in targets.items():
            if outs:
                share = ranks[u] / len(outs)
                for v in outs:
                    incoming[v] += share
        ranks = {vertex: (1.0 - damping) + damping * incoming[vertex]
                 for vertex in vertices}
    return ranks
