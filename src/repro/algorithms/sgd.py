"""Distributed SGD on evolving instance streams (SVM and LR workloads).

Topology: one ``param`` vertex holds the weight vector; ``n_samplers``
sampler vertices hold reservoir samples of the instance stream (reservoir
sampling keeps the main loop's initial guesses valid under evolution —
paper §3.2).  Samplers gather the current weights and scatter gradients;
the param vertex applies them through a descent schedule and scatters the
new weights.

The approximation/exact split of the execution model (§3.3):

* **main loop** (``g``): samplers compute *mini-batch* gradients on a draw
  from the reservoir — cheap, keeps up with the stream;
* **branch loop** (``f``): samplers compute *full-reservoir* gradients, so
  the branch runs deterministic distributed gradient descent from the main
  loop's approximation until the steps fall below the tolerance.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

import numpy as np

from repro.core.vertex import Delta, VertexContext, VertexProgram
from repro.streams.model import ADD_INSTANCE, StreamTuple
from repro.streams.sampling import ReservoirSampler

PARAM = "param"


def sampler_id(index: int) -> tuple[str, int]:
    return ("sampler", index)


@dataclass(frozen=True)
class Instance:
    """One labelled training example; ``label`` in {-1, +1}."""

    features: tuple[float, ...]
    label: int

    def x(self) -> np.ndarray:
        return np.asarray(self.features, dtype=float)


class Loss:
    """Loss interface shared by the SVM and LR workloads."""

    def gradient(self, weights: np.ndarray, xs: np.ndarray,
                 ys: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def objective(self, weights: np.ndarray, xs: np.ndarray,
                  ys: np.ndarray) -> float:
        raise NotImplementedError


class HingeLoss(Loss):
    """L2-regularised hinge loss (linear SVM)."""

    def __init__(self, l2: float = 1e-3) -> None:
        self.l2 = l2

    def gradient(self, weights, xs, ys):
        margins = ys * (xs @ weights)
        active = margins < 1.0
        if not np.any(active):
            return self.l2 * weights
        sub = -(ys[active, None] * xs[active]).mean(axis=0) * (
            active.mean())
        return sub + self.l2 * weights

    def objective(self, weights, xs, ys):
        margins = ys * (xs @ weights)
        hinge = np.maximum(0.0, 1.0 - margins).mean()
        return float(hinge + 0.5 * self.l2 * weights @ weights)


class LogisticLoss(Loss):
    """L2-regularised logistic loss (LR)."""

    def __init__(self, l2: float = 1e-4) -> None:
        self.l2 = l2

    def gradient(self, weights, xs, ys):
        margins = np.clip(ys * (xs @ weights), -30.0, 30.0)
        sigma = 1.0 / (1.0 + np.exp(margins))
        grad = -(sigma * ys) @ xs / len(ys)
        return grad + self.l2 * weights

    def objective(self, weights, xs, ys):
        margins = np.clip(ys * (xs @ weights), -30.0, 30.0)
        loss = np.log1p(np.exp(-margins)).mean()
        return float(loss + 0.5 * self.l2 * weights @ weights)


@dataclass
class ParamValue:
    weights: np.ndarray
    schedule: Any
    steps: int = 0
    last_objective: float = float("inf")
    #: Branch-loop step damping: a branch solves a *static* problem, so
    #: steps that increase the objective shrink this factor — guaranteeing
    #: convergence even under schedules (e.g. a large static rate) that
    #: would oscillate forever on the full batch.
    attenuation: float = 1.0


@dataclass
class SamplerValue:
    reservoir: ReservoirSampler
    weights: np.ndarray | None = None
    pending_inputs: int = 0
    rng: np.random.Generator = field(
        default_factory=lambda: np.random.default_rng(0))
    #: Weights this sampler last computed a gradient with; used to report
    #: the effect of the intervening step on the same batch.
    prev_weights: np.ndarray | None = None


class SGDProgram(VertexProgram):
    """Vertex program shared by the SVM and LR workloads."""

    def __init__(self, loss: Loss, dim: int, n_samplers: int,
                 schedule_factory: Callable[[], Any],
                 batch_size: int = 16, reservoir_capacity: int = 512,
                 input_batch: int = 8, tolerance: float = 1e-4,
                 grad_cost_per_instance: float = 2e-7,
                 seed: int = 0, use_reservoir: bool = True) -> None:
        """``use_reservoir=False`` swaps in the recency-biased buffer the
        paper warns against (§3.2) — kept for the sampling ablation."""
        self.loss = loss
        self.dim = dim
        self.n_samplers = n_samplers
        self.schedule_factory = schedule_factory
        self.batch_size = batch_size
        self.reservoir_capacity = reservoir_capacity
        self.input_batch = input_batch
        self.tolerance = tolerance
        self.grad_cost_per_instance = grad_cost_per_instance
        self.seed = seed
        self.use_reservoir = use_reservoir

    # ---------------------------------------------------------------- init
    def init(self, ctx: VertexContext) -> None:
        if ctx.vertex_id == PARAM:
            ctx.value = ParamValue(weights=np.zeros(self.dim),
                                   schedule=self.schedule_factory())
            for index in range(self.n_samplers):
                ctx.add_target(sampler_id(index))
        else:
            _tag, index = ctx.vertex_id
            rng = np.random.default_rng((self.seed << 16) ^ (index + 1))
            if self.use_reservoir:
                sampler = ReservoirSampler(self.reservoir_capacity, rng)
            else:
                from repro.streams.sampling import RecencyBiasedBuffer

                sampler = RecencyBiasedBuffer(self.reservoir_capacity, rng)
            ctx.value = SamplerValue(
                reservoir=sampler,
                rng=np.random.default_rng((self.seed << 16) ^ (index + 77)))
            ctx.add_target(PARAM)

    # -------------------------------------------------------------- gather
    def gather(self, ctx: VertexContext, source: Any, delta: Any) -> bool:
        if ctx.vertex_id == PARAM:
            return self._gather_param(ctx, delta)
        return self._gather_sampler(ctx, source, delta)

    def _gather_param(self, ctx: VertexContext, delta: Any) -> bool:
        value: ParamValue = ctx.value
        if isinstance(delta, Delta):
            # Bootstrap input: broadcast the initial weights once.
            return True
        gradient, objective, count, objective_before = delta
        if count == 0:
            return False
        if objective_before is not None:
            value.schedule.observe_step(objective_before, objective)
        else:
            value.schedule.observe(objective)
        value.last_objective = objective
        if not ctx.in_main_loop and objective_before is not None \
                and objective > objective_before:
            value.attenuation *= 0.7
        step = value.schedule.step(np.asarray(gradient))
        if not ctx.in_main_loop:
            step = step * value.attenuation
        value.weights = value.weights + step
        value.steps += 1
        return bool(np.linalg.norm(step) > self.tolerance)

    def _gather_sampler(self, ctx: VertexContext, source: Any,
                        delta: Any) -> bool:
        value: SamplerValue = ctx.value
        if source is None:
            if delta.kind != ADD_INSTANCE:
                return False
            value.reservoir.offer(delta.payload)
            value.pending_inputs += 1
            if value.pending_inputs >= self.input_batch:
                value.pending_inputs = 0
                return value.weights is not None
            return False
        # New weights from the param vertex: compute a fresh gradient.
        value.prev_weights = value.weights
        value.weights = np.asarray(delta)
        return len(value.reservoir) > 0

    # ------------------------------------------------------------- scatter
    def scatter(self, ctx: VertexContext) -> None:
        if ctx.vertex_id == PARAM:
            value: ParamValue = ctx.value
            ctx.emit_all(value.weights.copy())
            return
        self._scatter_sampler(ctx)

    def _scatter_sampler(self, ctx: VertexContext) -> None:
        value: SamplerValue = ctx.value
        if value.weights is None or not len(value.reservoir):
            return
        if ctx.in_main_loop:
            batch = value.reservoir.draw(
                min(self.batch_size, len(value.reservoir)))
        else:
            batch = list(value.reservoir)
        xs = np.stack([inst.x() for inst in batch])
        ys = np.asarray([inst.label for inst in batch], dtype=float)
        gradient = self.loss.gradient(value.weights, xs, ys)
        objective = self.loss.objective(value.weights, xs, ys)
        # Step feedback on the SAME batch: how did the last descent step
        # change the objective?  (Comparing across batches would conflate
        # stream drift with overshoot.)
        objective_before = None
        if value.prev_weights is not None:
            objective_before = self.loss.objective(value.prev_weights,
                                                   xs, ys)
        ctx.emit(PARAM, (gradient, objective, len(batch),
                         objective_before))

    # ---------------------------------------------------------------- cost
    def gather_cost(self, ctx: VertexContext, source: Any,
                    delta: Any) -> float | None:
        if ctx.vertex_id != PARAM and source is not None:
            # Receiving weights triggers a gradient pass over the batch.
            value: SamplerValue = ctx.value
            batch = (len(value.reservoir) if not ctx.in_main_loop
                     else min(self.batch_size, len(value.reservoir)))
            return 5e-6 + self.grad_cost_per_instance * batch * self.dim
        return None

    def activate_on_fork(self, ctx: VertexContext,
                         recently_updated: bool) -> bool:
        # The param vertex always re-anchors a branch loop.
        return ctx.vertex_id == PARAM or recently_updated

    def snapshot_value(self, value: Any) -> Any:
        """Cheap structural copy: instances are immutable, so the reservoir
        contents can be shared; only the containers and mutable scalars are
        cloned (a full deepcopy here dominated snapshot cost)."""
        if isinstance(value, ParamValue):
            return ParamValue(value.weights.copy(),
                              copy.deepcopy(value.schedule),
                              value.steps, value.last_objective,
                              value.attenuation)
        if isinstance(value, SamplerValue):
            sampler_cls = type(value.reservoir)
            reservoir = sampler_cls(value.reservoir.capacity,
                                    copy.deepcopy(value.reservoir._rng))
            reservoir.sample = list(value.reservoir.sample)
            reservoir.seen = value.reservoir.seen
            weights = None if value.weights is None else value.weights.copy()
            return SamplerValue(reservoir, weights, value.pending_inputs,
                                copy.deepcopy(value.rng))
        return copy.deepcopy(value)


class InstanceRouter:
    """Routes instances round-robin to the sampler shards."""

    def __init__(self, n_samplers: int) -> None:
        if n_samplers < 1:
            raise ValueError("need at least one sampler")
        self.n_samplers = n_samplers
        self._next = 0
        self._seeded = False

    def route(self, tup: StreamTuple) -> Iterable[tuple[Any, Delta]]:
        if tup.kind != ADD_INSTANCE:
            return
        if not self._seeded:
            # Wake the param vertex so it broadcasts initial weights.
            self._seeded = True
            yield PARAM, Delta("seed", None)
        target = sampler_id(self._next % self.n_samplers)
        self._next += 1
        yield target, Delta(ADD_INSTANCE, tup.payload, tup.weight)
