"""Shared pieces for graph workloads: edge routing and payload shapes.

Graph streams carry ``(u, v)`` or ``(u, v, w)`` edge payloads; the router
turns each stream tuple into per-vertex deltas (the producer endpoint learns
about its new/removed out-edge).
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.core.vertex import Delta
from repro.streams.model import ADD_EDGE, REMOVE_EDGE, StreamTuple


def edge_parts(payload: Any) -> tuple[Any, Any, float]:
    """Split an edge payload into (source, target, weight)."""
    if len(payload) == 3:
        u, v, w = payload
        return u, v, float(w)
    u, v = payload
    return u, v, 1.0


class EdgeStreamRouter:
    """Routes edge tuples to the source endpoint (and, for undirected
    graphs, to both endpoints)."""

    def __init__(self, undirected: bool = False) -> None:
        self.undirected = undirected

    def route(self, tup: StreamTuple) -> Iterable[tuple[Any, Delta]]:
        if tup.kind not in (ADD_EDGE, REMOVE_EDGE):
            return
        u, v, w = edge_parts(tup.payload)
        kind = tup.kind if tup.weight > 0 else REMOVE_EDGE
        yield u, Delta(kind, (u, v, w), tup.weight)
        if self.undirected:
            yield v, Delta(kind, (v, u, w), tup.weight)
