"""Descent-rate schedules for SGD workloads (paper §6.2.2).

A schedule turns a gradient into a weight delta and may adapt itself from
objective feedback.  The paper's main loop uses the *bold driver* heuristic
because schedules that decay monotonically (Adagrad, Adadelta) cannot track
an evolving model — both are included so that the ablation benches can show
exactly that failure mode.
"""

from __future__ import annotations

import numpy as np


class DescentSchedule:
    """Interface: observe objective values, then step along a gradient."""

    def observe(self, objective: float) -> None:
        """Feed one objective estimate (called before :meth:`step`)."""

    def observe_step(self, before: float, after: float) -> None:
        """Feed the effect of the last step measured on the *same* batch:
        objective at the old weights vs at the new weights.  This is the
        signal the bold driver reacts to — comparing across different
        batches of a drifting stream would conflate drift with overshoot
        and collapse the rate."""

    def step(self, gradient: np.ndarray) -> np.ndarray:
        """Return the weight delta for this gradient."""
        raise NotImplementedError

    @property
    def rate(self) -> float:
        """Current scalar rate, for instrumentation."""
        raise NotImplementedError


class StaticRate(DescentSchedule):
    """Constant descent rate."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self._rate = rate

    def observe(self, objective: float) -> None:
        pass

    def step(self, gradient: np.ndarray) -> np.ndarray:
        return -self._rate * gradient

    @property
    def rate(self) -> float:
        return self._rate


class BoldDriver(DescentSchedule):
    """The paper's dynamic heuristic: shrink the rate 10% when the
    objective grows, grow it 10% when the objective decreases too slowly
    (< 1% relative improvement)."""

    def __init__(self, initial_rate: float, increase: float = 1.1,
                 decrease: float = 0.9, slow_threshold: float = 0.01,
                 min_rate: float = 1e-8, max_rate: float = 1e3) -> None:
        if initial_rate <= 0:
            raise ValueError("initial_rate must be positive")
        self._rate = initial_rate
        self.increase = increase
        self.decrease = decrease
        self.slow_threshold = slow_threshold
        self.min_rate = min_rate
        self.max_rate = max_rate
        self._previous: float | None = None

    def observe(self, objective: float) -> None:
        if self._previous is not None:
            self.observe_step(self._previous, objective)
        self._previous = objective

    def observe_step(self, before: float, after: float) -> None:
        if before <= 0:
            return
        if after > before:
            # The step overshot: back off.
            self._rate = max(self._rate * self.decrease, self.min_rate)
        elif (before - after) / before < self.slow_threshold:
            # The step barely helped: lengthen the stride.
            self._rate = min(self._rate * self.increase, self.max_rate)

    def step(self, gradient: np.ndarray) -> np.ndarray:
        return -self._rate * gradient

    @property
    def rate(self) -> float:
        return self._rate


class Adagrad(DescentSchedule):
    """Per-coordinate decaying rates; included as the contrast case — its
    monotone decay cannot keep up with evolving inputs."""

    def __init__(self, rate: float, epsilon: float = 1e-8) -> None:
        self._rate = rate
        self.epsilon = epsilon
        self._accumulated: np.ndarray | None = None

    def observe(self, objective: float) -> None:
        pass

    def step(self, gradient: np.ndarray) -> np.ndarray:
        if self._accumulated is None:
            self._accumulated = np.zeros_like(gradient)
        self._accumulated = self._accumulated + gradient * gradient
        return -self._rate * gradient / np.sqrt(
            self._accumulated + self.epsilon)

    @property
    def rate(self) -> float:
        return self._rate


class Adadelta(DescentSchedule):
    """Zeiler's rate-free schedule; also decays effective steps over time."""

    def __init__(self, decay: float = 0.95, epsilon: float = 1e-6) -> None:
        self.decay = decay
        self.epsilon = epsilon
        self._grad_sq: np.ndarray | None = None
        self._delta_sq: np.ndarray | None = None

    def observe(self, objective: float) -> None:
        pass

    def step(self, gradient: np.ndarray) -> np.ndarray:
        if self._grad_sq is None:
            self._grad_sq = np.zeros_like(gradient)
            self._delta_sq = np.zeros_like(gradient)
        self._grad_sq = (self.decay * self._grad_sq
                         + (1 - self.decay) * gradient * gradient)
        delta = -(np.sqrt(self._delta_sq + self.epsilon)
                  / np.sqrt(self._grad_sq + self.epsilon)) * gradient
        self._delta_sq = (self.decay * self._delta_sq
                          + (1 - self.decay) * delta * delta)
        return delta

    @property
    def rate(self) -> float:
        if self._grad_sq is None:
            return 0.0
        return float(np.mean(np.sqrt(self._delta_sq + self.epsilon)
                             / np.sqrt(self._grad_sq + self.epsilon)))
