"""Seeded synthetic dataset generators (the paper's Table 1, scaled)."""

from repro.datagen.graphs import (connected_core, degree_histogram,
                                  livejournal_like, rmat_edges,
                                  rmat_edges_fast)
from repro.datagen.instances import higgs_like, pubmed_like
from repro.datagen.points import gaussian_mixture

__all__ = [
    "connected_core",
    "degree_histogram",
    "gaussian_mixture",
    "higgs_like",
    "livejournal_like",
    "pubmed_like",
    "rmat_edges",
    "rmat_edges_fast",
]
