"""Labelled instance streams (stand in for HIGGS and PubMed, Table 1).

Both are linear-classification tasks: HIGGS-like data is dense and low
dimensional; PubMed-like data is sparse, high-dimensional bag-of-words with
a planted relevance signal.  With ``drift > 0`` the true separating
hyperplane rotates over the stream, which is what exercises the main loop's
ability to *track* an evolving model (paper §6.2.2).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.sgd import Instance


def _label(x: np.ndarray, w: np.ndarray, noise: float,
           rng: np.random.Generator) -> int:
    margin = float(x @ w) + float(rng.normal(scale=noise))
    return 1 if margin >= 0 else -1


def higgs_like(n_instances: int, dim: int = 28, seed: int = 0,
               noise: float = 0.3, drift: float = 0.0
               ) -> tuple[list[Instance], np.ndarray]:
    """Dense two-class instances around a (possibly drifting) hyperplane.

    Returns ``(instances, final_true_weights)``.
    """
    if n_instances < 1:
        raise ValueError("n_instances must be positive")
    rng = np.random.default_rng(seed)
    true_w = rng.normal(size=dim)
    true_w /= np.linalg.norm(true_w)
    rotation = rng.normal(size=dim)
    rotation -= rotation @ true_w * true_w  # orthogonal drift direction
    rotation /= max(np.linalg.norm(rotation), 1e-12)
    instances = []
    w = true_w
    for index in range(n_instances):
        progress = index / max(1, n_instances - 1)
        w = true_w + drift * progress * rotation
        w = w / np.linalg.norm(w)
        x = rng.normal(size=dim)
        instances.append(Instance(tuple(x), _label(x, w, noise, rng)))
    return instances, w


def pubmed_like(n_instances: int, dim: int = 200, density: float = 0.05,
                seed: int = 0, noise: float = 0.05, drift: float = 0.0
                ) -> tuple[list[Instance], np.ndarray]:
    """Sparse bag-of-words-like instances with a planted relevance signal
    over a small subset of "terms".  (Stored dense at this scale.)"""
    if n_instances < 1:
        raise ValueError("n_instances must be positive")
    rng = np.random.default_rng(seed)
    signal_terms = rng.choice(dim, size=max(2, dim // 10), replace=False)
    true_w = np.zeros(dim)
    true_w[signal_terms] = rng.normal(size=len(signal_terms))
    true_w /= np.linalg.norm(true_w)
    rotation = np.zeros(dim)
    rotation[signal_terms] = rng.normal(size=len(signal_terms))
    rotation -= rotation @ true_w * true_w
    rotation /= max(np.linalg.norm(rotation), 1e-12)
    instances = []
    w = true_w
    per_doc = max(1, int(dim * density))
    for index in range(n_instances):
        progress = index / max(1, n_instances - 1)
        w = true_w + drift * progress * rotation
        w = w / np.linalg.norm(w)
        x = np.zeros(dim)
        terms = rng.choice(dim, size=per_doc, replace=False)
        x[terms] = rng.poisson(2.0, size=per_doc) + 1.0
        x /= np.linalg.norm(x)
        instances.append(Instance(tuple(x), _label(x, w, noise, rng)))
    return instances, w
