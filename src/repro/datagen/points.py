"""Clustering points (stands in for the paper's 20D-points dataset).

The paper generated its dataset "by choosing some initial points in the
space and using a normal random generator to pick up points around them" —
this module does exactly that, seeded and scaled down.
"""

from __future__ import annotations

import numpy as np


def gaussian_mixture(n_points: int, k: int = 8, dim: int = 20,
                     spread: float = 10.0, noise: float = 1.0,
                     seed: int = 0,
                     drift: float = 0.0
                     ) -> tuple[list[np.ndarray], np.ndarray]:
    """Points around ``k`` Gaussian centres.

    Returns ``(points, true_centres)``.  With ``drift > 0`` the centres
    move linearly over the course of the stream, producing an *evolving*
    model for the adaptation experiments.
    """
    if n_points < 1 or k < 1:
        raise ValueError("n_points and k must be positive")
    rng = np.random.default_rng(seed)
    centres = rng.uniform(-spread, spread, size=(k, dim))
    directions = rng.normal(size=(k, dim))
    norms = np.linalg.norm(directions, axis=1, keepdims=True)
    directions = directions / np.where(norms == 0, 1.0, norms)
    assignments = rng.integers(0, k, size=n_points)
    points = []
    for index, cluster in enumerate(assignments):
        progress = index / max(1, n_points - 1)
        centre = centres[cluster] + drift * progress * directions[cluster]
        points.append(centre + rng.normal(scale=noise, size=dim))
    return points, centres
