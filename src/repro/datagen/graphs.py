"""Synthetic graph generation (stands in for LiveJournal, Table 1).

R-MAT recursively drops edges into an adjacency matrix quadrant by
quadrant, producing the power-law degree distributions of social graphs.
The generator is fully seeded and returns plain edge lists that the stream
sources can turn into (retractable) edge streams.
"""

from __future__ import annotations

import numpy as np


def rmat_edges(n_vertices: int, n_edges: int, rng: np.random.Generator,
               a: float = 0.57, b: float = 0.19, c: float = 0.19,
               self_loops: bool = False,
               deduplicate: bool = True) -> list[tuple[int, int]]:
    """Generate a directed R-MAT graph.

    ``n_vertices`` is rounded up to the next power of two internally; edge
    endpoints are then mapped back below ``n_vertices``.
    """
    if n_vertices < 2:
        raise ValueError("need at least 2 vertices")
    if not 0 < a + b + c < 1:
        raise ValueError("quadrant probabilities must sum below 1")
    scale = int(np.ceil(np.log2(n_vertices)))
    probabilities = np.array([a, b, c, 1.0 - a - b - c])
    edges: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()
    # Oversample to survive dedup / self-loop rejection.
    budget = n_edges * 4 + 64
    while len(edges) < n_edges and budget > 0:
        budget -= 1
        u = v = 0
        for _level in range(scale):
            quadrant = int(rng.choice(4, p=probabilities))
            u = (u << 1) | (quadrant >> 1)
            v = (v << 1) | (quadrant & 1)
        u %= n_vertices
        v %= n_vertices
        if not self_loops and u == v:
            continue
        if deduplicate:
            if (u, v) in seen:
                continue
            seen.add((u, v))
        edges.append((u, v))
    return edges


def rmat_edges_fast(n_vertices: int, n_edges: int,
                    rng: np.random.Generator,
                    a: float = 0.57, b: float = 0.19, c: float = 0.19,
                    self_loops: bool = False,
                    deduplicate: bool = True
                    ) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized R-MAT: same recursive-quadrant model as
    :func:`rmat_edges`, drawing every quadrant choice for a whole batch
    of candidate edges at once and filtering self-loops / parallel edges
    *after* the draw.  Post-draw filtering keeps the base random stream
    independent of the flags: toggling ``self_loops`` / ``deduplicate``
    changes which candidates survive, never which numbers are drawn —
    the property the seeded-determinism regression test pins.

    Returns ``(src, dst)`` int64 arrays (the bulk engine's native edge
    format), not tuple lists — this is the generator ``repro.bench
    scale`` uses for 10⁶-vertex graphs, where the scalar generator's
    per-edge Python loop would dominate the bench.  The numbers drawn
    differ from :func:`rmat_edges` (batched draws consume the stream in
    a different order), so existing scalar-generator seeds are
    untouched.
    """
    if n_vertices < 2:
        raise ValueError("need at least 2 vertices")
    if not 0 < a + b + c < 1:
        raise ValueError("quadrant probabilities must sum below 1")
    scale = int(np.ceil(np.log2(n_vertices)))
    probabilities = np.array([a, b, c, 1.0 - a - b - c])
    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    seen: np.ndarray | None = None
    total = 0
    rounds = 8  # oversampling retries, mirroring the scalar budget
    batch = n_edges
    while total < n_edges and rounds > 0:
        rounds -= 1
        # One (batch, scale) draw: each column is one recursion level.
        quadrants = rng.choice(4, size=(batch, scale), p=probabilities)
        u = np.zeros(batch, dtype=np.int64)
        v = np.zeros(batch, dtype=np.int64)
        for level in range(scale):
            u = (u << 1) | (quadrants[:, level] >> 1)
            v = (v << 1) | (quadrants[:, level] & 1)
        u %= n_vertices
        v %= n_vertices
        keep = np.ones(batch, dtype=bool)
        if not self_loops:
            keep &= u != v
        if deduplicate:
            pair = u * np.int64(n_vertices) + v
            # Drop repeats within the batch (first occurrence wins, in
            # draw order — matching the scalar generator's semantics)
            # and against all earlier batches.
            order = np.argsort(pair, kind="stable")
            sorted_pair = pair[order]
            first = np.ones(batch, dtype=bool)
            first[order[1:]] = sorted_pair[1:] != sorted_pair[:-1]
            keep &= first
            if seen is not None:
                keep &= ~np.isin(pair, seen, assume_unique=False)
            kept_pairs = pair[keep]
            seen = (kept_pairs if seen is None
                    else np.concatenate([seen, kept_pairs]))
        u, v = u[keep], v[keep]
        src_parts.append(u)
        dst_parts.append(v)
        total += len(u)
    src = np.concatenate(src_parts)[:n_edges]
    dst = np.concatenate(dst_parts)[:n_edges]
    return src, dst


def connected_core(edges: list[tuple[int, int]],
                   source: int) -> list[tuple[int, int]]:
    """Edges reachable from ``source`` (useful to make SSSP interesting)."""
    adjacency: dict[int, list[int]] = {}
    for u, v in edges:
        adjacency.setdefault(u, []).append(v)
    reachable = {source}
    stack = [source]
    while stack:
        vertex = stack.pop()
        for target in adjacency.get(vertex, []):
            if target not in reachable:
                reachable.add(target)
                stack.append(target)
    return [(u, v) for u, v in edges if u in reachable]


def livejournal_like(n_vertices: int = 2000, n_edges: int = 10000,
                     seed: int = 0,
                     ensure_source: int | None = 0
                     ) -> list[tuple[int, int]]:
    """The default graph of the bundled experiments: a scaled-down,
    power-law, mostly-connected directed graph.

    With ``ensure_source`` set, chain edges are prepended so that the
    source reaches a sizeable portion of the graph.
    """
    rng = np.random.default_rng(seed)
    edges = rmat_edges(n_vertices, n_edges, rng)
    if ensure_source is not None:
        # Star edges from the source into random vertices knit the
        # components together.
        extra_targets = rng.choice(n_vertices, size=max(4, n_vertices // 50),
                                   replace=False)
        extra = [(ensure_source, int(t)) for t in extra_targets
                 if int(t) != ensure_source]
        edges = extra + edges
    return edges


def degree_histogram(edges: list[tuple[int, int]]) -> dict[int, int]:
    """Out-degree -> count; tests use it to confirm the power law."""
    degrees: dict[int, int] = {}
    for u, _v in edges:
        degrees[u] = degrees.get(u, 0) + 1
    histogram: dict[int, int] = {}
    for degree in degrees.values():
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram
