"""Synthetic graph generation (stands in for LiveJournal, Table 1).

R-MAT recursively drops edges into an adjacency matrix quadrant by
quadrant, producing the power-law degree distributions of social graphs.
The generator is fully seeded and returns plain edge lists that the stream
sources can turn into (retractable) edge streams.
"""

from __future__ import annotations

import numpy as np


def rmat_edges(n_vertices: int, n_edges: int, rng: np.random.Generator,
               a: float = 0.57, b: float = 0.19, c: float = 0.19,
               self_loops: bool = False,
               deduplicate: bool = True) -> list[tuple[int, int]]:
    """Generate a directed R-MAT graph.

    ``n_vertices`` is rounded up to the next power of two internally; edge
    endpoints are then mapped back below ``n_vertices``.
    """
    if n_vertices < 2:
        raise ValueError("need at least 2 vertices")
    if not 0 < a + b + c < 1:
        raise ValueError("quadrant probabilities must sum below 1")
    scale = int(np.ceil(np.log2(n_vertices)))
    probabilities = np.array([a, b, c, 1.0 - a - b - c])
    edges: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()
    # Oversample to survive dedup / self-loop rejection.
    budget = n_edges * 4 + 64
    while len(edges) < n_edges and budget > 0:
        budget -= 1
        u = v = 0
        for _level in range(scale):
            quadrant = int(rng.choice(4, p=probabilities))
            u = (u << 1) | (quadrant >> 1)
            v = (v << 1) | (quadrant & 1)
        u %= n_vertices
        v %= n_vertices
        if not self_loops and u == v:
            continue
        if deduplicate:
            if (u, v) in seen:
                continue
            seen.add((u, v))
        edges.append((u, v))
    return edges


def connected_core(edges: list[tuple[int, int]],
                   source: int) -> list[tuple[int, int]]:
    """Edges reachable from ``source`` (useful to make SSSP interesting)."""
    adjacency: dict[int, list[int]] = {}
    for u, v in edges:
        adjacency.setdefault(u, []).append(v)
    reachable = {source}
    stack = [source]
    while stack:
        vertex = stack.pop()
        for target in adjacency.get(vertex, []):
            if target not in reachable:
                reachable.add(target)
                stack.append(target)
    return [(u, v) for u, v in edges if u in reachable]


def livejournal_like(n_vertices: int = 2000, n_edges: int = 10000,
                     seed: int = 0,
                     ensure_source: int | None = 0
                     ) -> list[tuple[int, int]]:
    """The default graph of the bundled experiments: a scaled-down,
    power-law, mostly-connected directed graph.

    With ``ensure_source`` set, chain edges are prepended so that the
    source reaches a sizeable portion of the graph.
    """
    rng = np.random.default_rng(seed)
    edges = rmat_edges(n_vertices, n_edges, rng)
    if ensure_source is not None:
        # Star edges from the source into random vertices knit the
        # components together.
        extra_targets = rng.choice(n_vertices, size=max(4, n_vertices // 50),
                                   replace=False)
        extra = [(ensure_source, int(t)) for t in extra_targets
                 if int(t) != ensure_source]
        edges = extra + edges
    return edges


def degree_histogram(edges: list[tuple[int, int]]) -> dict[int, int]:
    """Out-degree -> count; tests use it to confirm the power law."""
    degrees: dict[int, int] = {}
    for u, _v in edges:
        degrees[u] = degrees.get(u, 0) + 1
    histogram: dict[int, int] = {}
    for degree in degrees.values():
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram
