"""Stream sources: turn static datasets into timestamped evolving streams.

A source is an iterator of :class:`StreamTuple`.  Timestamps come from a
:class:`RateSchedule`, so the same dataset can arrive uniformly, in bursts,
or with Poisson gaps, deterministically per seed.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from repro.streams.model import (ADD_EDGE, ADD_INSTANCE, ADD_POINT,
                                 REMOVE_EDGE, StreamTuple)


class RateSchedule:
    """Assigns arrival timestamps to a sequence of items."""

    def timestamps(self, count: int) -> Iterator[float]:
        raise NotImplementedError


class UniformRate(RateSchedule):
    """``rate`` items per virtual second, evenly spaced, starting at
    ``start``."""

    def __init__(self, rate: float, start: float = 0.0) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = rate
        self.start = start

    def timestamps(self, count: int) -> Iterator[float]:
        gap = 1.0 / self.rate
        return (self.start + gap * (i + 1) for i in range(count))


class PoissonRate(RateSchedule):
    """Poisson arrivals with mean ``rate`` items per second."""

    def __init__(self, rate: float, rng: np.random.Generator,
                 start: float = 0.0) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = rate
        self.start = start
        self._rng = rng

    def timestamps(self, count: int) -> Iterator[float]:
        gaps = self._rng.exponential(1.0 / self.rate, size=count)
        return iter(self.start + np.cumsum(gaps))


class BurstyRate(RateSchedule):
    """Items arrive in bursts of ``burst_size`` every ``period`` seconds —
    models a crawler dumping batches of pages."""

    def __init__(self, burst_size: int, period: float,
                 start: float = 0.0) -> None:
        if burst_size <= 0 or period <= 0:
            raise ValueError("burst_size and period must be positive")
        self.burst_size = burst_size
        self.period = period
        self.start = start

    def timestamps(self, count: int) -> Iterator[float]:
        for i in range(count):
            yield self.start + self.period * (1 + i // self.burst_size)


def stream_from(items: Iterable[tuple[str, Any, int]],
                schedule: RateSchedule,
                count: int | None = None) -> list[StreamTuple]:
    """Zip ``(kind, payload, weight)`` items with schedule timestamps."""
    materialised = list(items) if count is None else list(items)[:count]
    times = schedule.timestamps(len(materialised))
    return [StreamTuple(float(t), kind, payload, weight)
            for t, (kind, payload, weight) in zip(times, materialised)]


def edge_stream(edges: Sequence[tuple[Any, Any]], schedule: RateSchedule,
                delete_fraction: float = 0.0,
                rng: np.random.Generator | None = None) -> list[StreamTuple]:
    """Build a retractable edge stream from a static edge list.

    With ``delete_fraction > 0``, that fraction of inserted edges is later
    retracted (a `REMOVE_EDGE` tuple), interleaved into the stream — the
    search-engine scenario of paper §3.1.
    """
    items: list[tuple[str, Any, int]] = [
        (ADD_EDGE, edge, 1) for edge in edges]
    if delete_fraction > 0:
        if rng is None:
            raise ValueError("delete_fraction > 0 requires an rng")
        n_deletes = int(len(edges) * delete_fraction)
        victims = rng.choice(len(edges), size=n_deletes, replace=False)
        for index in sorted(int(v) for v in victims):
            # Retract no earlier than 2 positions after the insert so the
            # stream stays causally sensible under uniform rates.
            slot = min(len(items), index + 2 + int(rng.integers(0, 5)))
            items.insert(slot, (REMOVE_EDGE, edges[index], -1))
    return stream_from(items, schedule)


def point_stream(points: Sequence[Any],
                 schedule: RateSchedule) -> list[StreamTuple]:
    """Stream of clustering points (KMeans workload)."""
    return stream_from(((ADD_POINT, point, 1) for point in points),
                       schedule)


def instance_stream(instances: Sequence[Any],
                    schedule: RateSchedule) -> list[StreamTuple]:
    """Stream of labelled training instances (SVM / LR workloads)."""
    return stream_from(((ADD_INSTANCE, instance, 1)
                        for instance in instances), schedule)


def split_prefix(tuples: Sequence[StreamTuple],
                 fraction: float) -> tuple[list[StreamTuple],
                                           list[StreamTuple]]:
    """Split a stream into the first ``fraction`` of tuples and the rest."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    cut = int(len(tuples) * fraction)
    return list(tuples[:cut]), list(tuples[cut:])
