"""Reservoir sampling (Vitter's Algorithm R).

Paper §3.2: SGD over an evolving instance stream must sample *uniformly over
everything seen so far* — plain random sampling over the buffered prefix
over-weights old instances, which breaks the correctness condition (the
approximation would not be a valid initial guess).  Reservoir sampling keeps
every instance equally likely regardless of arrival time.
"""

from __future__ import annotations

from typing import Any, Generic, Iterable, Iterator, TypeVar

import numpy as np

T = TypeVar("T")


class ReservoirSampler(Generic[T]):
    """Fixed-capacity uniform sample over an unbounded stream.

    >>> rng = np.random.default_rng(0)
    >>> sampler = ReservoirSampler(capacity=2, rng=rng)
    >>> for item in range(100):
    ...     sampler.offer(item)
    >>> len(sampler.sample)
    2
    """

    def __init__(self, capacity: int, rng: np.random.Generator) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._rng = rng
        self.sample: list[T] = []
        self.seen = 0

    def offer(self, item: T) -> None:
        """Present one stream element to the sampler."""
        self.seen += 1
        if len(self.sample) < self.capacity:
            self.sample.append(item)
            return
        slot = int(self._rng.integers(0, self.seen))
        if slot < self.capacity:
            self.sample[slot] = item

    def extend(self, items: Iterable[T]) -> None:
        for item in items:
            self.offer(item)

    def draw(self, count: int) -> list[T]:
        """Draw ``count`` items uniformly (with replacement) from the
        current reservoir."""
        if not self.sample:
            return []
        indices = self._rng.integers(0, len(self.sample), size=count)
        return [self.sample[int(i)] for i in indices]

    def __len__(self) -> int:
        return len(self.sample)

    def __iter__(self) -> Iterator[T]:
        return iter(self.sample)


class RecencyBiasedBuffer(Generic[T]):
    """The *broken* sampler the paper warns against: keeps the most recent
    ``capacity`` items only, so older data is forgotten and the main
    loop's guesses stop being valid for the full input.  Included as the
    contrast case for tests and ablations; drop-in compatible with
    :class:`ReservoirSampler`."""

    def __init__(self, capacity: int,
                 rng: np.random.Generator | None = None) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.sample: list[T] = []
        self.seen = 0

    def offer(self, item: T) -> None:
        self.seen += 1
        self.sample.append(item)
        if len(self.sample) > self.capacity:
            self.sample.pop(0)

    def extend(self, items: Iterable[T]) -> None:
        for item in items:
            self.offer(item)

    def draw(self, count: int) -> list[T]:
        if not self.sample:
            return []
        indices = self._rng.integers(0, len(self.sample), size=count)
        return [self.sample[int(i)] for i in indices]

    def __len__(self) -> int:
        return len(self.sample)

    def __iter__(self) -> Iterator[T]:
        return iter(self.sample)


def sample_is_uniform(counts: dict[Any, int], trials: int,
                      capacity: int, population: int,
                      tolerance: float = 0.35) -> bool:
    """Chi-square-style sanity check used by tests: is every item's
    inclusion frequency within ``tolerance`` of ``capacity/population``?"""
    expected = trials * capacity / population
    if expected <= 0:
        return False
    return all(abs(count - expected) <= tolerance * expected
               for count in counts.values())
