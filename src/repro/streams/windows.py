"""Sliding windows over turnstile streams.

Many real-time analyses only care about the recent past ("rank pages
crawled in the last hour").  Because Tornado consumes *retractable*
streams, windowing is just stream rewriting: every insertion is paired
with a retraction scheduled when the item leaves the window.  The
resulting stream feeds any workload unchanged.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.streams.model import StreamTuple


def sliding_window(tuples: Iterable[StreamTuple],
                   window: float) -> list[StreamTuple]:
    """Rewrite a stream so each tuple is retracted ``window`` seconds
    after it appears.

    Existing retractions pass through untouched (their insertion's
    expiry retraction is still emitted; the turnstile algebra keeps the
    multiset consistent because multiplicities just cancel earlier).
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    rewritten: list[StreamTuple] = []
    for tup in tuples:
        rewritten.append(tup)
        if tup.weight > 0:
            rewritten.append(StreamTuple(tup.timestamp + window, tup.kind,
                                         tup.payload, -tup.weight))
    rewritten.sort(key=lambda t: t.timestamp)
    return rewritten


def tumbling_windows(tuples: Iterable[StreamTuple],
                     width: float) -> Iterator[tuple[int,
                                                     list[StreamTuple]]]:
    """Group a stream into consecutive fixed-width windows, yielding
    ``(window_index, tuples)`` pairs — handy for epoch-style baselines."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    bucket: list[StreamTuple] = []
    current: int | None = None
    for tup in sorted(tuples, key=lambda t: t.timestamp):
        index = int(tup.timestamp // width)
        if current is None:
            current = index
        if index != current:
            yield current, bucket
            bucket = []
            current = index
        bucket.append(tup)
    if current is not None and bucket:
        yield current, bucket
