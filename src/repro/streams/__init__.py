"""Evolving-data streams: turnstile model, sources and sampling."""

from repro.streams.model import (ADD_EDGE, ADD_INSTANCE, ADD_POINT,
                                 REMOVE_EDGE, StreamTuple, TurnstileState,
                                 prefix_at)
from repro.streams.sampling import (RecencyBiasedBuffer, ReservoirSampler,
                                    sample_is_uniform)
from repro.streams.windows import sliding_window, tumbling_windows
from repro.streams.sources import (BurstyRate, PoissonRate, RateSchedule,
                                   UniformRate, edge_stream, instance_stream,
                                   point_stream, split_prefix, stream_from)

__all__ = [
    "ADD_EDGE",
    "ADD_INSTANCE",
    "ADD_POINT",
    "REMOVE_EDGE",
    "BurstyRate",
    "PoissonRate",
    "RateSchedule",
    "RecencyBiasedBuffer",
    "ReservoirSampler",
    "StreamTuple",
    "TurnstileState",
    "UniformRate",
    "edge_stream",
    "instance_stream",
    "point_stream",
    "prefix_at",
    "sample_is_uniform",
    "split_prefix",
    "stream_from",
    "sliding_window",
    "tumbling_windows",
]
