"""The turnstile stream model (paper §3.1).

The input of a Tornado job is an unbounded sequence of timestamped updates
(*stream tuples*); the value of the input at an instant ``t`` is the sum of
all updates with timestamp ≤ t.  Deletions are just updates with negative
weight, which makes the streams *retractable* — e.g. an edge stream produced
by a crawler may both insert and remove edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

# Well-known tuple kinds used by the built-in workloads.
ADD_EDGE = "add_edge"
REMOVE_EDGE = "remove_edge"
ADD_POINT = "add_point"
ADD_INSTANCE = "add_instance"


@dataclass(frozen=True, slots=True)
class StreamTuple:
    """One timestamped update in a turnstile stream.

    Attributes
    ----------
    timestamp:
        Instant at which the update happens (virtual seconds).
    kind:
        Application-level tag (e.g. ``"add_edge"``).
    payload:
        The update body; hashable for edge streams, arbitrary otherwise.
    weight:
        Turnstile multiplicity delta; +1 insert, -1 delete.
    """

    timestamp: float
    kind: str
    payload: Any
    weight: int = 1


@dataclass
class TurnstileState:
    """Materialised prefix of a turnstile stream: a multiset of payloads.

    ``apply`` folds tuples in; items whose multiplicity reaches zero vanish.
    Negative multiplicities are retained (a deletion may arrive before its
    insertion under at-least-once delivery) so that the algebra stays
    commutative.
    """

    counts: dict[Any, int] = field(default_factory=dict)
    applied: int = 0
    last_timestamp: float = float("-inf")

    def apply(self, tup: StreamTuple) -> None:
        key = (tup.kind, tup.payload)
        new = self.counts.get(key, 0) + tup.weight
        if new == 0:
            self.counts.pop(key, None)
        else:
            self.counts[key] = new
        self.applied += 1
        if tup.timestamp > self.last_timestamp:
            self.last_timestamp = tup.timestamp

    def multiplicity(self, kind: str, payload: Any) -> int:
        return self.counts.get((kind, payload), 0)

    def items(self, kind: str | None = None) -> Iterator[tuple[Any, int]]:
        for (item_kind, payload), count in self.counts.items():
            if kind is None or item_kind == kind:
                yield payload, count

    def __len__(self) -> int:
        return len(self.counts)


def prefix_at(tuples: Iterable[StreamTuple], instant: float) -> TurnstileState:
    """Materialise ``S[t]``: fold every tuple with timestamp ≤ ``instant``."""
    state = TurnstileState()
    for tup in tuples:
        if tup.timestamp <= instant:
            state.apply(tup)
    return state
