"""Table 3: query latency across systems.

Spark-like, GraphLab-like and Naiad-like engines against Tornado (with the
in-memory store, as the paper does for fairness) on four workloads, with
queries issued when 1%, 5%, 10% and 20% of the input has accumulated.

Expected shapes: Tornado is fastest everywhere and its latency is roughly
independent of the accumulated input; Spark is slowest (per-query reload +
materialisation); Naiad beats the batch engines on SSSP/SVM but falls
behind on PageRank as its traces accumulate; Naiad exhausts memory on
KMeans (reported as '-').
"""

from __future__ import annotations

from repro.algorithms import HingeLoss
from repro.baselines import (GradientDescentSolver, KMeansSolver,
                             MemoryBudgetExceeded, NaiadLikeEngine,
                             PageRankSolver, SSSPSolver, graphlab_like,
                             spark_like)
from repro.bench.harness import ExperimentResult
from repro.bench.workloads import (SMALL, Scale, kmeans_bundle,
                                   pagerank_bundle, sssp_bundle,
                                   svm_bundle)

PERCENTS = (1, 5, 10, 20)
WORKLOADS = ("sssp", "pagerank", "svm", "kmeans")


def naiad_memory_budget(scale: Scale) -> float:
    """Trace-memory budget: ~6 retained records per input edge.
    Sparse workloads (differentially compacted) stay far below it; the
    KMeans dense per-point-per-iteration traces blow through it (the
    paper's Table 3 OOM)."""
    return 64.0 * 6.0 * scale.n_edges


def _bundle_for(workload: str, scale: Scale):
    builders = {
        "sssp": lambda: sssp_bundle(scale, storage_backend="memory",
                                    report_interval=0.01),
        "pagerank": lambda: pagerank_bundle(scale,
                                            storage_backend="memory",
                                            report_interval=0.01),
        "svm": lambda: svm_bundle(scale, storage_backend="memory",
                                  report_interval=0.01),
        "kmeans": lambda: kmeans_bundle(
            _kmeans_scale(scale), storage_backend="memory",
            report_interval=0.01),
    }
    return builders[workload]()


def _kmeans_scale(scale: Scale) -> Scale:
    """The paper's KMeans dataset is large relative to the graph (10M
    points); mirror the ratio by sizing the point stream like the edge
    stream."""
    from dataclasses import replace

    return replace(scale, n_points=2 * scale.n_edges)


def _solver_for(workload: str, scale: Scale, bundle):
    if workload == "sssp":
        return lambda: SSSPSolver(0)
    if workload == "pagerank":
        return lambda: PageRankSolver(tolerance=1e-3)
    if workload == "svm":
        return lambda: GradientDescentSolver(HingeLoss(1e-3), scale.dim,
                                             rate=0.2, tolerance=3e-3)
    initial = bundle.extras["initial"]
    return lambda: KMeansSolver(initial, tolerance=1e-3)


def _tornado_latencies(bundle, percents) -> list[float]:
    job = bundle.job
    stream = bundle.stream
    job.feed(stream)
    latencies = []
    for percent in percents:
        cutoff = max(2, int(len(stream) * percent / 100))
        job.run_until(lambda c=cutoff: job.ingester.tuples_ingested >= c)
        job.run_for(0.02)
        latencies.append(job.query_and_wait().latency)
    return latencies


def run_table3(scale: Scale = SMALL,
               percents: tuple[int, ...] = PERCENTS,
               workloads: tuple[str, ...] = WORKLOADS
               ) -> ExperimentResult:
    result = ExperimentResult(
        experiment="table3",
        title="Query latency across systems (seconds; '-' = out of memory)",
        columns=["workload", "percent", "spark", "graphlab", "naiad",
                 "tornado"],
    )
    cells: dict[tuple[str, str, int], float | None] = {}
    for workload in workloads:
        bundle = _bundle_for(workload, scale)
        stream = bundle.stream
        make_solver = _solver_for(workload, scale, bundle)
        spark = spark_like(make_solver())
        graphlab = graphlab_like(make_solver())
        naiad = NaiadLikeEngine(
            make_solver(), epoch_size=max(1, len(stream) // 100),
            memory_budget=naiad_memory_budget(scale),
            dense_iterations=(workload == "kmeans"))
        naiad_dead = False
        tornado = _tornado_latencies(bundle, percents)
        fed = 0
        for index, percent in enumerate(percents):
            cutoff = max(2, int(len(stream) * percent / 100))
            delta = stream[fed:cutoff]
            fed = cutoff
            spark.feed(list(delta))
            graphlab.feed(list(delta))
            row: dict[str, float | None] = {
                "spark": spark.query().latency,
                "graphlab": graphlab.query().latency,
                "tornado": tornado[index],
            }
            if naiad_dead:
                row["naiad"] = None
            else:
                naiad.feed(list(delta))
                try:
                    row["naiad"] = naiad.query().latency
                except MemoryBudgetExceeded:
                    naiad_dead = True
                    row["naiad"] = None
            for system, latency in row.items():
                cells[(workload, system, percent)] = latency
            result.add_row(workload=workload, percent=percent, **row)

    def latencies(workload, system):
        return [cells[(workload, system, p)] for p in percents]

    settled = [p for p in percents if p >= 5] or list(percents)
    result.check(
        "tornado is the fastest system on every workload (>=5% input)",
        all(cells[(w, "tornado", p)] is not None
            and all(cells[(w, s, p)] is None
                    or cells[(w, "tornado", p)] < cells[(w, s, p)]
                    for s in ("spark", "graphlab", "naiad"))
            for w in workloads for p in settled),
        "")
    result.check(
        "spark is slower than graphlab everywhere",
        all(cells[(w, "spark", p)] > cells[(w, "graphlab", p)]
            for w in workloads for p in percents),
        "")
    if "kmeans" in workloads:
        result.check(
            "naiad runs out of memory on kmeans",
            any(cells[("kmeans", "naiad", p)] is None for p in percents),
            str(latencies("kmeans", "naiad")))
    if "pagerank" in workloads:
        pr_naiad = latencies("pagerank", "naiad")
        result.check(
            "naiad degrades on pagerank as traces accumulate",
            pr_naiad[-1] is not None and pr_naiad[0] is not None
            and pr_naiad[-1] > pr_naiad[0],
            str([round(v, 4) if v is not None else None
                 for v in pr_naiad]))
    if "sssp" in workloads:
        sssp_tornado = latencies("sssp", "tornado")
        spread = max(sssp_tornado) / max(min(sssp_tornado), 1e-9)
        result.check(
            "tornado latency roughly independent of accumulated input",
            spread < 25.0,
            f"sssp tornado latencies={['%.4f' % v for v in sssp_tornado]}")
    return result
