"""Skew benchmark (Fig. 9-adjacent): a planted hot-key workload.

Every vertex starts pinned to ``proc-0`` — the pathological layout a
hash partitioner produces when one key dominates the stream — and the
same SSSP stream is absorbed under three policies:

* ``none`` — rebalancing disabled: the hot processor drains the whole
  backlog serially.
* ``pause`` — the stop-the-world rebalancer: ingest is paused and the
  main loop quiesced before each (small) batch of hot vertices moves.
* ``live`` — the live migrator: the planner streams batches of vertex
  handoffs while ingest and the main loop keep running.

The measurement is *virtual* time — deterministic and machine
independent — so the mode ratios are exact replay facts, not wall-clock
estimates: completion is the virtual time at which the whole stream has
been ingested and the main loop is quiescent, and throughput is tuples
per virtual second.  The shape checks assert what the migration
subsystem is for: the live migrator never pauses ingest, spreads the
planted hot spot, stays exact, and beats the stop-the-world rebalancer
by at least 2x on throughput.
"""

from __future__ import annotations

import math
from typing import Any

from repro.algorithms.graph_common import EdgeStreamRouter
from repro.algorithms.sssp import SSSPProgram, reference_sssp
from repro.bench.harness import ExperimentResult
from repro.core import Application, TornadoConfig, TornadoJob
from repro.datagen import livejournal_like
from repro.streams import UniformRate, edge_stream

MODES = ("none", "pause", "live")

#: Default planted-skew workload size (heavy-tailed random graph, the
#: same generator Fig. 9 uses) and stream rate; ``run_skew`` callers can
#: shrink or grow them.
N_VERTICES = 400
N_EDGES = 3000
STREAM_RATE = 8000.0
#: Per-gather compute cost: high enough that draining the hot
#: processor's backlog — not the stream rate — bounds completion.
GATHER_COST = 2e-3


def skewed_edges(n_vertices: int = N_VERTICES,
                 n_edges: int = N_EDGES) -> list[tuple[int, int]]:
    """A heavy-tailed random graph; its hot keys plus the planted
    placement (every vertex on ``proc-0``) make the skew."""
    return livejournal_like(n_vertices, n_edges, seed=0)


def make_skew_job(mode: str, n_vertices: int = N_VERTICES,
                  **config_overrides: Any) -> TornadoJob:
    config = dict(n_processors=4, report_interval=0.01,
                  storage_backend="memory", gather_cost=GATHER_COST,
                  rebalance_enabled=mode != "none",
                  rebalance_mode=mode if mode != "none" else "live",
                  rebalance_factor=1.5, rebalance_min_gap=0.001,
                  rebalance_cooldown=0.1)
    config.update(config_overrides)
    app = Application(SSSPProgram(0), EdgeStreamRouter(), name="sssp")
    job = TornadoJob(app, TornadoConfig(**config))
    # Plant the hot spot: every vertex starts on proc-0.
    job.partition.reassign_batch(
        [(vertex, "proc-0") for vertex in range(n_vertices)])
    return job


def measure_mode(mode: str, n_vertices: int = N_VERTICES,
                 n_edges: int = N_EDGES, rate: float = STREAM_RATE,
                 **config_overrides: Any) -> dict[str, Any]:
    """Absorb the planted-skew stream under one policy; returns the
    completion time, throughput and the run's bookkeeping."""
    job = make_skew_job(mode, n_vertices, **config_overrides)
    edges = skewed_edges(n_vertices, n_edges)
    stream = edge_stream(edges, UniformRate(rate))
    job.feed(stream)
    total = len(stream)
    job.run_until(lambda: job.ingester.tuples_ingested >= total,
                  max_events=200_000_000)
    job.run_until(job.quiescent, max_events=200_000_000)
    completion = job.sim.now
    reference = {v: d for v, d in reference_sssp(edges, 0).items()
                 if not math.isinf(d)}
    approx = {vid: value.distance
              for vid, value in job.main_values().items()
              if not math.isinf(value.distance)}
    owners = {job.partition.owner(vertex)
              for vertex in range(n_vertices)}
    return {
        "mode": mode,
        "tuples": total,
        "completion_s": completion,
        "throughput": total / completion if completion > 0 else 0.0,
        "rebalances": job.master.rebalances,
        "pauses": job.ingester.pauses,
        "owners": len(owners),
        "exact": approx == reference,
        "digest": job.trace.digest() if job.config.trace_enabled else "",
    }


def skew_section(n_vertices: int = N_VERTICES, n_edges: int = N_EDGES,
                 rate: float = STREAM_RATE) -> dict[str, Any]:
    """The ``skew`` block of ``BENCH_perf.json``: per-mode virtual-time
    results plus the live/pause throughput ratio and the same-seed
    determinism digest (all machine independent)."""
    runs = {mode: measure_mode(mode, n_vertices, n_edges, rate)
            for mode in MODES}
    repeat = measure_mode("live", n_vertices, n_edges, rate,
                          trace_enabled=True)
    again = measure_mode("live", n_vertices, n_edges, rate,
                         trace_enabled=True)
    pause_tp = runs["pause"]["throughput"]
    return {
        "n_vertices": n_vertices,
        "n_edges": n_edges,
        "stream_rate": rate,
        "modes": {mode: {key: run[key] for key in
                         ("tuples", "completion_s", "throughput",
                          "rebalances", "pauses", "owners", "exact")}
                  for mode, run in runs.items()},
        "live_over_pause": (runs["live"]["throughput"] / pause_tp
                            if pause_tp else 0.0),
        "determinism": {"digests": [repeat["digest"], again["digest"]],
                        "identical": repeat["digest"] == again["digest"]},
    }


def run_skew(n_vertices: int = N_VERTICES, n_edges: int = N_EDGES,
             rate: float = STREAM_RATE) -> ExperimentResult:
    """Planted hot-key skew: live migration vs stop-the-world vs none."""
    section = skew_section(n_vertices, n_edges, rate)
    result = ExperimentResult(
        experiment="skew",
        title="Planted hot-key skew: live migration vs stop-the-world",
        columns=["mode", "tuples", "completion_s", "throughput",
                 "rebalances", "pauses", "owners", "exact"],
        notes=("virtual time on the simulated cluster; every vertex "
               "starts pinned to proc-0"),
    )
    for mode in MODES:
        result.add_row(mode=mode, **section["modes"][mode])
    modes = section["modes"]
    result.check(
        "live migration ≥2x stop-the-world throughput",
        section["live_over_pause"] >= 2.0,
        f"live/pause={section['live_over_pause']:.2f}x")
    result.check(
        "live migration never pauses ingest",
        modes["live"]["pauses"] == 0 and modes["live"]["rebalances"] >= 1,
        f"rebalances={modes['live']['rebalances']}")
    result.check(
        "live migration spreads the planted hot spot",
        modes["live"]["owners"] > 1,
        f"owners={modes['live']['owners']}")
    result.check(
        "every mode converges to the exact distances",
        all(run["exact"] for run in modes.values()))
    result.check(
        "same seed ⇒ byte-identical trace under live migration",
        section["determinism"]["identical"],
        f"digest={section['determinism']['digests'][0][:16]}…")
    result.extras["section"] = section
    return result
