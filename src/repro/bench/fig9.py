"""Figure 9: scalability of Tornado.

9a — speedup vs number of workers: SSSP/PageRank/KMeans scale nearly
linearly until the network fabric saturates; SVM anti-scales because each
iteration only updates the shared parameter vertex and extra workers only
add gradient traffic.

9b — message throughput vs number of workers: grows with workers and then
hits the fabric's capacity ceiling.
"""

from __future__ import annotations

from typing import Callable

from repro.bench.harness import ExperimentResult
from repro.bench.workloads import (SMALL, Scale, WorkloadBundle,
                                   kmeans_bundle, pagerank_bundle,
                                   sssp_bundle, svm_bundle)

WORKERS = (2, 4, 8, 16)
#: Fabric ceiling in messages per virtual second.
NET_CAPACITY = 150_000.0


def _graph_completion_time(bundle: WorkloadBundle) -> float:
    """Virtual time for the main loop to ingest and absorb the stream."""
    job = bundle.job
    job.feed(bundle.stream)
    total = len(bundle.stream)
    job.run_until(lambda: job.ingester.tuples_ingested >= total)
    job.run_until(lambda: job.quiescent(), max_events=100_000_000)
    return job.sim.now


def _svm_completion_time(bundle: WorkloadBundle,
                         target_steps: int = 120) -> float:
    """Virtual time for the parameter vertex to absorb N gradient steps."""
    from repro.algorithms.sgd import PARAM

    job = bundle.job
    job.feed(bundle.stream)

    def done() -> bool:
        param = job.main_values().get(PARAM)
        return param is not None and param.steps >= target_steps

    job.run_until(done, max_events=100_000_000)
    return job.sim.now


def _bundle_for(workload: str, scale: Scale,
                n_workers: int) -> WorkloadBundle:
    overrides = dict(n_processors=n_workers, n_nodes=max(2, n_workers // 2),
                     net_capacity=NET_CAPACITY, report_interval=0.02,
                     stream_rateignored=None)
    overrides.pop("stream_rateignored")
    fast = Scale(**{**scale.__dict__, "stream_rate": 1e5})
    builders: dict[str, Callable[[], WorkloadBundle]] = {
        "sssp": lambda: sssp_bundle(fast, **overrides),
        "pagerank": lambda: pagerank_bundle(fast, **overrides),
        # Heavy per-point rescans make the shard work dominate protocol
        # overheads, so splitting shards across workers shows up.
        "kmeans": lambda: kmeans_bundle(fast, n_shards=n_workers,
                                        point_cost=5e-5, **overrides),
        # The paper's SVM splits one mini-batch across the workers and
        # synchronises each iteration: compute per worker shrinks while
        # coordination grows — which is why it anti-scales.
        "svm": lambda: svm_bundle(fast, n_samplers=n_workers,
                                  batch_size=max(4, 64 // n_workers),
                                  delay_bound=1, **overrides),
    }
    return builders[workload]()


def run_fig9(scale: Scale = SMALL, workers: tuple[int, ...] = WORKERS,
             workloads: tuple[str, ...] = ("sssp", "pagerank", "kmeans",
                                           "svm")) -> ExperimentResult:
    """Speedup and message throughput vs worker count."""
    result = ExperimentResult(
        experiment="fig9",
        title="Scalability: speedup and message throughput vs #workers",
        columns=["workload", "workers", "completion_s", "speedup",
                 "peak_msgs_per_s"],
    )
    speedups: dict[str, list[float]] = {}
    throughputs: dict[str, list[float]] = {}
    for workload in workloads:
        times: list[float] = []
        peaks: list[float] = []
        for count in workers:
            bundle = _bundle_for(workload, scale, count)
            bundle.job.network.stats.bucket_width = 0.1
            if workload == "svm":
                elapsed = _svm_completion_time(bundle)
            else:
                elapsed = _graph_completion_time(bundle)
            times.append(elapsed)
            peaks.append(bundle.job.network.stats
                         .peak_remote_messages_per_second())
        base = times[0]
        series = [base / t for t in times]
        speedups[workload] = series
        throughputs[workload] = peaks
        for count, elapsed, speedup, peak in zip(workers, times, series,
                                                 peaks):
            result.add_row(workload=workload, workers=count,
                           completion_s=elapsed, speedup=speedup,
                           peak_msgs_per_s=peak)
    for workload in ("sssp", "pagerank", "kmeans"):
        if workload in speedups:
            series = speedups[workload]
            result.check(
                f"{workload} speeds up with more workers",
                max(series) > 1.15,
                f"{workload} speedups={['%.2f' % s for s in series]}")
    if "svm" in speedups:
        result.check(
            "svm does not scale (communication-bound)",
            speedups["svm"][-1] < 1.5,
            f"svm speedups={['%.2f' % s for s in speedups['svm']]}")
    if "sssp" in throughputs:
        result.check(
            "message throughput grows with workers",
            throughputs["sssp"][-1] > throughputs["sssp"][0],
            f"sssp peaks={['%.0f' % p for p in throughputs['sssp']]}")
        result.check(
            "message throughput respects the fabric ceiling",
            all(peak <= NET_CAPACITY * 1.5
                for peaks in throughputs.values() for peak in peaks),
            f"ceiling={NET_CAPACITY:.0f}")
    return result
