"""Figure 5: batch methods vs the main loop's approximation.

The paper measures 99th-percentile query latency for SSSP, PageRank and
KMeans under mini-batch processing at decreasing batch sizes, against
Tornado's approximate main loop.  Both series run on the *same* Tornado
runtime here: the batch series uses ``main_loop_mode="batch"`` (the main
loop only accumulates inputs; each epoch's branch loop does all the work,
warm-started from the previous epoch's merged results), the approximate
series uses the normal main loop.

Expected shapes — 5a/5b (SSSP, PageRank): batch latency falls with the
batch size, then flattens at a floor; the approximate series sits well
below the best batch.  5c (KMeans): approximation does not help — every
branch rescans all points, so the approximate latency is comparable to the
best batch (paper §6.2.1).
"""

from __future__ import annotations

from typing import Callable

from repro.bench.harness import ExperimentResult, flattens, percentile
from repro.bench.workloads import (Scale, SMALL, WorkloadBundle,
                                   kmeans_bundle, pagerank_bundle,
                                   run_queries_per_epoch, sssp_bundle)

BUILDERS: dict[str, Callable[..., WorkloadBundle]] = {
    "sssp": sssp_bundle,
    "pagerank": pagerank_bundle,
    "kmeans": kmeans_bundle,
}

#: Batch sizes as fractions of the stream, mirroring the paper's sweep
#: from huge epochs down to tiny ones.
BATCH_FRACTIONS = (0.5, 0.25, 0.125, 0.05, 0.025)


def run_fig5(workload: str = "sssp", scale: Scale = SMALL,
             batch_fractions: tuple[float, ...] = BATCH_FRACTIONS,
             max_queries: int = 12,
             delete_fraction: float = 0.1) -> ExperimentResult:
    """Reproduce one panel of Figure 5 for ``workload``.

    Graph workloads stream a *retractable* edge stream (``delete_fraction``
    of edges is later removed — the crawler scenario of paper §3.1), so
    even small epochs trigger sizeable recomputation cones.
    """
    from dataclasses import replace

    builder = BUILDERS[workload]
    extra: dict = ({"delete_fraction": delete_fraction}
                   if workload in ("sssp", "pagerank") else {})
    if workload == "pagerank":
        # PageRank propagation cones are wide; slow the stream so the main
        # loop's approximation can keep up (the paper's main loop also
        # tracked the crawl rate, §6.2.1).
        scale = replace(scale, stream_rate=min(scale.stream_rate, 150.0))
    if workload == "kmeans":
        # Give the per-point rescan a realistic weight so branch latency
        # reflects the dataset size rather than protocol floors.
        extra["point_cost"] = 2e-6
    result = ExperimentResult(
        experiment=f"fig5-{workload}",
        title=f"Batch vs approximate 99th-percentile latency ({workload})",
        columns=["method", "batch_size", "p99_latency_s", "queries"],
    )
    stream_len = len(builder(scale, **extra).stream)
    batch_latencies: list[float] = []
    for fraction in batch_fractions:
        batch_size = max(2, int(stream_len * fraction))
        bundle = builder(scale, main_loop_mode="batch",
                         merge_policy="always", report_interval=0.01,
                         **extra)
        latencies = run_queries_per_epoch(bundle, batch_size,
                                          max_queries=max_queries)
        p99 = percentile(latencies)
        batch_latencies.append(p99)
        result.add_row(method=f"batch,{batch_size}",
                       batch_size=batch_size, p99_latency_s=p99,
                       queries=len(latencies))
    # Approximate series: normal main loop, probed at the cadence of the
    # smallest batch (the paper probes at the batch methods' instants).
    probe_batch = max(2, int(stream_len * min(batch_fractions)))
    bundle = builder(scale, report_interval=0.01, **extra)
    approx_latencies = run_queries_per_epoch(bundle, probe_batch,
                                             max_queries=max_queries)
    approx_p99 = percentile(approx_latencies)
    result.add_row(method="approximate", batch_size=None,
                   p99_latency_s=approx_p99,
                   queries=len(approx_latencies))

    best_batch = min(batch_latencies)
    if workload in ("sssp", "pagerank"):
        result.check(
            "approximate beats the best batch",
            approx_p99 < best_batch,
            f"approx={approx_p99:.4f}s best_batch={best_batch:.4f}s")
        result.check(
            "batch latency flattens as batches shrink",
            flattens(batch_latencies, knee=len(batch_latencies) - 2,
                     early_factor=1.0)
            or batch_latencies[-1] > batch_latencies[-2] * 0.5,
            f"series={['%.3f' % v for v in batch_latencies]}")
        result.check(
            "batch latency grows with the batch size",
            batch_latencies[0] > batch_latencies[-1],
            f"largest={batch_latencies[0]:.4f}s "
            f"smallest={batch_latencies[-1]:.4f}s")
    else:
        # KMeans: every branch rescans all points, so neither a smaller
        # batch nor the approximation changes the per-query cost much.
        result.check(
            "approximation does not help KMeans (≈ best batch)",
            best_batch * 0.3 < approx_p99 < best_batch * 4.0,
            f"approx={approx_p99:.4f}s best_batch={best_batch:.4f}s")
        result.check(
            "KMeans batch latency is flat in the batch size",
            max(batch_latencies) < 3.0 * min(batch_latencies),
            f"series={['%.4f' % v for v in batch_latencies]}")
    return result
