"""Table 1: the datasets (scaled).

The original datasets are listed with the synthetic stand-ins this
reproduction generates; the rows report the *generated* sizes at the
requested scale so benches can sanity-check the generators.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult
from repro.bench.workloads import SMALL, Scale
from repro.datagen import (gaussian_mixture, higgs_like, livejournal_like,
                           pubmed_like)


def run_table1(scale: Scale = SMALL) -> ExperimentResult:
    result = ExperimentResult(
        experiment="table1",
        title="Datasets (paper original -> scaled synthetic stand-in)",
        columns=["dataset", "paper_size", "generated", "used_by"],
    )
    edges = livejournal_like(scale.n_vertices, scale.n_edges,
                             seed=scale.seed)
    vertices = {u for e in edges for u in e}
    result.add_row(dataset="LiveJournal-like (R-MAT)",
                   paper_size="4.84M nodes / 68.9M edges",
                   generated=f"{len(vertices)} nodes / {len(edges)} edges",
                   used_by="SSSP & PageRank")
    points, _centres = gaussian_mixture(scale.n_points, k=scale.k,
                                        dim=20, seed=scale.seed)
    result.add_row(dataset="20D-points (Gaussian mixture)",
                   paper_size="10M instances / 20 attrs",
                   generated=f"{len(points)} instances / 20 attrs",
                   used_by="KMeans")
    higgs, _w = higgs_like(scale.n_instances, dim=28, seed=scale.seed)
    result.add_row(dataset="HIGGS-like (dense two-class)",
                   paper_size="11M instances / 28 attrs",
                   generated=f"{len(higgs)} instances / 28 attrs",
                   used_by="SVM")
    pubmed, _w = pubmed_like(scale.n_instances, dim=scale.dim * 8,
                             seed=scale.seed)
    result.add_row(dataset="PubMed-like (sparse bag-of-words)",
                   paper_size="8.2M instances / 141K attrs",
                   generated=(f"{len(pubmed)} instances / "
                              f"{scale.dim * 8} attrs"),
                   used_by="LR")
    result.check("all four generators produce data",
                 len(result.rows) == 4, "")
    return result
