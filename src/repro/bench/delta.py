"""Delta-path benchmarks: sender-side combiners + batched scatter I/O +
the versioned-store fast path, A/B-ed against the legacy one-envelope-
per-value path (``delta_path=False``), which reproduces the pre-delta
runtime message for message.

Like :mod:`repro.bench.perf` this measures *wall-clock* throughput of the
host kernel, not virtual time — but events here are **stream tuples
ingested**, so the eps ratio is exactly the end-to-end wall-time ratio of
the same workload on the two paths.

Scenarios:

* ``dense_scatter`` — PageRank (tolerance 0, exact ``fsum`` gather) on a
  layered dense DAG at the default delay bound: every commit runs a full
  PREPARE/ACK round fanned across a whole layer, so the session window's
  per-destination batching (updates *and* prepares *and* acks in one
  envelope) dominates.  Run to quiescence; the digest is over the exact
  final ranks.
* ``combine_slack`` — the same DAG under a small delay bound (the
  skip-prepare regime of paper §4.4): commits are driven inline by input
  bursts, so several same-(producer, consumer) scatters land in one
  dispatch window and the sender-side combiner merges them.  At the
  default bound the combiner structurally cannot fire — a second
  same-pair commit inside one window would need a prepare round the
  window itself flushes first — which is why merging gets its own
  scenario.
* ``branch_fork`` — SSSP over a churning edge stream (30% deletes) with
  repeated full-activation branch-fork queries: exercises the store's
  per-loop index and snapshot cache (fork reads), branch-loop batching,
  and teardown.  Queries are issued only at main-loop quiescence, so
  both paths fork from — and converge to — identical exact distances.

Both digests must be byte-identical across the two paths (the delta path
reorders and merges messages but may not change any converged result)::

    python -m repro.bench delta [--quick]   # merges the "delta" section
                                            # into BENCH_perf.json
"""

from __future__ import annotations

import hashlib
import platform
import sys
import time
from typing import Any, Callable

from repro.algorithms import PageRankProgram
from repro.algorithms.graph_common import EdgeStreamRouter
from repro.bench.harness import ExperimentResult, merge_bench_json
from repro.bench.workloads import Scale, base_config, sssp_bundle
from repro.core import Application, TornadoJob
from repro.core.job import QueryResult
from repro.streams import UniformRate, edge_stream

#: Quick (CI smoke) and full scenario sizes.  dense_scatter is
#: (layer width, #layers); branch_fork reuses the shared Scale knobs.
QUICK_DAG = (12, 5)
FULL_DAG = (24, 10)
#: dense_scatter stream rate: fast enough that processors stay busy
#: between protocol rounds — at low rates both paths spend their wall
#: time in idle report flushes and the ratio measures nothing.
DENSE_RATE = 1e5
#: combine_slack: same DAG as QUICK_DAG but at a small delay bound and a
#: gentler rate, putting commits in the skip-prepare regime where the
#: sender-side combiner actually merges (see the module docstring).
SLACK_DAG = (12, 5)
SLACK_RATE = 2e4
SLACK_BOUND = 4
QUICK_FORK = Scale(n_vertices=120, n_edges=500, stream_rate=4000.0,
                   seed=3)
FULL_FORK = Scale(n_vertices=240, n_edges=1200, stream_rate=4000.0,
                  seed=3)
#: Wall-clock speedup floors: full-size committed numbers and the CI
#: smoke (--quick) floor, which stays loose so load spikes on shared
#: runners do not flake the job.  combine_slack only asserts
#: no-regression — its point is merge correctness, not throughput.
DENSE_FLOOR, FORK_FLOOR, QUICK_FLOOR, SLACK_FLOOR = 2.0, 1.5, 1.3, 1.0


def _digest(items: dict[Any, float]) -> str:
    payload = repr(sorted((str(key), value)
                          for key, value in items.items()))
    return hashlib.sha256(payload.encode()).hexdigest()


# ------------------------------------------------------------- scenarios
def _layered_dag(width: int, layers: int) -> list[tuple[int, int, float]]:
    """Every vertex of layer k points at every vertex of layer k+1: the
    densest scatter the router can produce, and (being acyclic) one on
    which zero-tolerance PageRank provably quiesces."""
    edges = []
    for layer in range(layers - 1):
        base, nxt = layer * width, (layer + 1) * width
        for u in range(width):
            for v in range(width):
                edges.append((base + u, nxt + v, 1.0))
    return edges


def _dense_scatter_run(delta: bool, size: tuple[int, int],
                       rate: float = DENSE_RATE,
                       delay_bound: int | None = None):
    width, layers = size
    stream = edge_stream(_layered_dag(width, layers), UniformRate(rate))
    app = Application(PageRankProgram(tolerance=0.0), EdgeStreamRouter(),
                      name="pagerank")
    config = base_config(delta_path=delta, seed=11)
    if delay_bound is not None:
        config.delay_bound = delay_bound
    job = TornadoJob(app, config)

    def run() -> tuple[TornadoJob, int, str]:
        job.feed(stream)
        total = len(stream)
        job.run_until(lambda: job.ingester.tuples_ingested >= total)
        job.run_until(lambda: job.quiescent(), max_events=100_000_000)
        ranks = {vertex: value.rank
                 for vertex, value in job.main_values().items()}
        return job, total, _digest(ranks)

    return run


def _branch_fork_run(delta: bool, scale: Scale, queries: int = 3):
    bundle = sssp_bundle(scale, delete_fraction=0.3, delta_path=delta,
                         merge_policy="never", seed=13)
    job = bundle.job

    def run() -> tuple[TornadoJob, int, str]:
        job.feed(bundle.stream)
        total = len(bundle.stream)
        distances: dict[Any, float] = {}
        for index in range(1, queries + 1):
            cutoff = total * index // queries
            job.run_until(
                lambda c=cutoff: job.ingester.tuples_ingested >= c)
            # Quiesce first: only at a fixpoint is the forked snapshot
            # (and hence the exact converged distances) path independent.
            job.run_until(lambda: job.quiescent(),
                          max_events=100_000_000)
            result: QueryResult = job.query_and_wait(full_activation=True)
            for vertex, value in result.values.items():
                distances[f"q{index}:{vertex}"] = value.distance
        return job, total, _digest(distances)

    return run


# ------------------------------------------------------------ measurement
def _timed(runner: Callable[[], tuple[TornadoJob, int, str]]
           ) -> dict[str, Any]:
    started = time.perf_counter()
    job, events, digest = runner()
    wall = time.perf_counter() - started
    return {"job": job, "events": events, "digest": digest,
            "wall_s": wall,
            "events_per_s": events / wall if wall > 0 else 0.0}


def _delta_stats(job: TornadoJob) -> dict[str, float]:
    """Combiner/batching/cache effectiveness of one delta-path run (all
    deterministic replay facts, identical across repeats)."""
    counters = {name: job.metrics.counter(f"core.{name}").value
                for name in ("scatter_buffered", "scatter_merged",
                             "scatter_batches", "scatter_batched_updates",
                             "scatter_envelopes_saved")}
    store = job.store
    buffered = counters["scatter_buffered"]
    cache_reads = store.cache_hits + store.cache_misses
    return {
        **counters,
        "combine_hit_rate": (counters["scatter_merged"] / buffered
                             if buffered else 0.0),
        "store_cache_hits": store.cache_hits,
        "store_cache_misses": store.cache_misses,
        "store_cache_hit_rate": (store.cache_hits / cache_reads
                                 if cache_reads else 0.0),
        "store_rebases": store.rebases,
        "store_reads": store.reads,
        "store_internal_reads": store.internal_reads,
    }


def _ab(name: str, make: Callable[[bool], Callable],
        repeats: int = 1) -> dict[str, Any]:
    """A/B one scenario, alternating legacy/delta to decorrelate machine
    drift; each side keeps its best run (wall noise only slows runs
    down).  ``events_match`` also demands digest identity: same tuples
    in, byte-identical converged results out, on every run of both
    paths."""
    legacy_runs, delta_runs = [], []
    for _ in range(repeats):
        legacy_runs.append(_timed(make(False)))
        delta_runs.append(_timed(make(True)))
    legacy = max(legacy_runs, key=lambda run: run["events_per_s"])
    delta = max(delta_runs, key=lambda run: run["events_per_s"])
    speedup = (delta["events_per_s"] / legacy["events_per_s"]
               if legacy["events_per_s"] else 0.0)
    matches = all(run["events"] == legacy["events"]
                  and run["digest"] == legacy["digest"]
                  for run in legacy_runs + delta_runs)
    stats = _delta_stats(delta["job"])
    strip = ("job",)
    return {"name": name,
            "legacy": {k: v for k, v in legacy.items() if k not in strip},
            "delta": {k: v for k, v in delta.items() if k not in strip},
            "speedup": speedup, "events_match": matches,
            "digest": delta["digest"], "stats": stats}


def run_delta(quick: bool = False,
              json_path: str | None = "BENCH_perf.json",
              *, dag_size: tuple[int, int] | None = None,
              fork_scale: Scale | None = None,
              queries: int | None = None) -> ExperimentResult:
    """Run both scenarios delta-vs-legacy, merge the section into
    ``json_path`` (preserving the kernel perf report already there) and
    return the usual experiment report.  The keyword overrides shrink
    scenarios below ``--quick`` size for the test suite."""
    dag = dag_size or (QUICK_DAG if quick else FULL_DAG)
    fork = fork_scale or (QUICK_FORK if quick else FULL_FORK)
    n_queries = queries if queries is not None else (2 if quick else 3)
    repeats = 1 if quick else 3

    slack = dag_size or SLACK_DAG
    scenarios = [
        _ab("dense_scatter",
            lambda delta: _dense_scatter_run(delta, dag),
            repeats=repeats),
        _ab("combine_slack",
            lambda delta: _dense_scatter_run(delta, slack, SLACK_RATE,
                                             SLACK_BOUND),
            repeats=repeats),
        _ab("branch_fork",
            lambda delta: _branch_fork_run(delta, fork, n_queries),
            repeats=repeats),
    ]

    result = ExperimentResult(
        experiment="delta",
        title="Delta path: tuples/sec wall-clock, delta vs legacy",
        columns=["scenario", "tuples", "legacy_eps", "delta_eps",
                 "speedup", "combine_rate", "cache_rate"],
        notes=("events = stream tuples ingested (same workload both "
               "sides), so eps ratio = end-to-end wall-time ratio; "
               "legacy = delta_path=False"),
    )
    for scenario in scenarios:
        result.add_row(scenario=scenario["name"],
                       tuples=scenario["delta"]["events"],
                       legacy_eps=scenario["legacy"]["events_per_s"],
                       delta_eps=scenario["delta"]["events_per_s"],
                       speedup=scenario["speedup"],
                       combine_rate=scenario["stats"]["combine_hit_rate"],
                       cache_rate=scenario["stats"]
                       ["store_cache_hit_rate"])
    by_name = {s["name"]: s for s in scenarios}
    result.check("identical digests, delta vs legacy, every scenario",
                 all(s["events_match"] for s in scenarios),
                 ", ".join(f"{s['name']}={s['digest'][:12]}…"
                           for s in scenarios))
    if quick:
        result.check(
            f"dense scatter ≥{QUICK_FLOOR}x on the delta path (smoke)",
            by_name["dense_scatter"]["speedup"] >= QUICK_FLOOR,
            f"speedup={by_name['dense_scatter']['speedup']:.2f}x")
    else:
        result.check(
            f"dense scatter ≥{DENSE_FLOOR}x on the delta path",
            by_name["dense_scatter"]["speedup"] >= DENSE_FLOOR,
            f"speedup={by_name['dense_scatter']['speedup']:.2f}x")
        result.check(
            f"branch fork ≥{FORK_FLOOR}x on the delta path",
            by_name["branch_fork"]["speedup"] >= FORK_FLOOR,
            f"speedup={by_name['branch_fork']['speedup']:.2f}x")
        result.check(
            f"combine_slack ≥{SLACK_FLOOR}x (no regression)",
            by_name["combine_slack"]["speedup"] >= SLACK_FLOOR,
            f"speedup={by_name['combine_slack']['speedup']:.2f}x")
    result.check("combiner fires in the skip-prepare regime",
                 by_name["combine_slack"]["stats"]["scatter_merged"] > 0)
    result.check("fork reads hit the snapshot cache",
                 by_name["branch_fork"]["stats"]["store_cache_hits"] > 0)

    report = {
        "bench": "delta_path",
        "version": 1,
        "quick": quick,
        "python": platform.python_version(),
        "scenarios": {s["name"]: {k: s[k] for k in
                                  ("legacy", "delta", "speedup",
                                   "events_match", "digest", "stats")}
                      for s in scenarios},
    }
    result.extras["report"] = report
    if json_path is not None:
        merge_bench_json(json_path, {"delta": report})
    return result


def main(argv: list[str]) -> int:
    result = run_delta(quick="--quick" in argv)
    print(result.report())
    return 0 if result.all_checks_pass else 1


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main(sys.argv[1:]))
