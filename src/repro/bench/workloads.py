"""Workload builders shared by the experiment modules.

Each builder returns a ready ``(job, stream, oracle-ish extras)`` bundle at
a given scale.  Scales are kept small by default so the pytest-benchmark
targets finish quickly; the CLI harness can pass larger ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.algorithms import (KMeansProgram, PageRankProgram, SSSPProgram,
                              StaticRate, logreg_application,
                              svm_application)
from repro.algorithms.graph_common import EdgeStreamRouter
from repro.algorithms.kmeans import PointRouter
from repro.core import Application, TornadoConfig, TornadoJob
from repro.datagen import (gaussian_mixture, higgs_like, livejournal_like,
                           pubmed_like)
from repro.streams import (StreamTuple, UniformRate, edge_stream,
                           instance_stream, point_stream)


@dataclass(frozen=True)
class Scale:
    """Knobs shared by the graph/point/instance workloads."""

    n_vertices: int = 400
    n_edges: int = 2000
    n_points: int = 240
    n_instances: int = 400
    dim: int = 8
    k: int = 4
    stream_rate: float = 2000.0
    seed: int = 0


SMALL = Scale()
MEDIUM = Scale(n_vertices=1200, n_edges=6000, n_points=600,
               n_instances=1200, dim=12, k=6)


def base_config(**overrides: Any) -> TornadoConfig:
    defaults = dict(n_processors=4, report_interval=0.02,
                    storage_backend="memory", retransmit_timeout=0.5)
    defaults.update(overrides)
    return TornadoConfig(**defaults)


@dataclass
class WorkloadBundle:
    """Everything an experiment needs to drive one workload."""

    name: str
    job: TornadoJob
    stream: list[StreamTuple]
    extras: dict[str, Any]

    def feed_all(self) -> None:
        self.job.feed(self.stream)


def _graph_stream(scale: Scale, rate: float | None = None,
                  delete_fraction: float = 0.0
                  ) -> tuple[list, list[StreamTuple]]:
    edges = livejournal_like(scale.n_vertices, scale.n_edges,
                             seed=scale.seed)
    rng = np.random.default_rng(scale.seed + 17)
    stream = edge_stream(edges, UniformRate(rate or scale.stream_rate),
                         delete_fraction=delete_fraction,
                         rng=rng if delete_fraction else None)
    return edges, stream


def sssp_bundle(scale: Scale = SMALL, source: int = 0,
                delete_fraction: float = 0.0,
                **config_overrides: Any) -> WorkloadBundle:
    edges, stream = _graph_stream(scale, delete_fraction=delete_fraction)
    app = Application(
        SSSPProgram(source, max_distance=scale.n_vertices * 2.0),
        EdgeStreamRouter(), name="sssp")
    job = TornadoJob(app, base_config(**config_overrides))
    return WorkloadBundle("sssp", job, stream,
                          {"edges": edges, "source": source})


def pagerank_bundle(scale: Scale = SMALL, delete_fraction: float = 0.0,
                    tolerance: float = 3e-3,
                    **config_overrides: Any) -> WorkloadBundle:
    edges, stream = _graph_stream(scale, delete_fraction=delete_fraction)
    app = Application(PageRankProgram(tolerance=tolerance),
                      EdgeStreamRouter(), name="pagerank")
    job = TornadoJob(app, base_config(**config_overrides))
    return WorkloadBundle("pagerank", job, stream, {"edges": edges})


def kmeans_bundle(scale: Scale = SMALL, n_shards: int = 4,
                  point_cost: float = 2e-6,
                  **config_overrides: Any) -> WorkloadBundle:
    points, centres = gaussian_mixture(scale.n_points, k=scale.k,
                                       dim=scale.dim, seed=scale.seed)
    rng = np.random.default_rng(scale.seed)
    picks = rng.choice(len(points), size=scale.k, replace=False)
    initial = [points[int(i)] for i in picks]
    program = KMeansProgram(k=scale.k, n_shards=n_shards, dim=scale.dim,
                            tolerance=1e-3, input_batch=16,
                            point_cost=point_cost)
    app = Application(program, PointRouter(scale.k, n_shards, initial),
                      name="kmeans")
    job = TornadoJob(app, base_config(**config_overrides))
    stream = point_stream(points, UniformRate(scale.stream_rate))
    return WorkloadBundle("kmeans", job, stream,
                          {"points": points, "initial": initial,
                           "centres": centres})


def svm_bundle(scale: Scale = SMALL, n_samplers: int = 4,
               schedule_factory: Callable | None = None,
               drift: float = 0.0, batch_size: int = 16,
               **config_overrides: Any) -> WorkloadBundle:
    instances, true_w = higgs_like(scale.n_instances, dim=scale.dim,
                                   seed=scale.seed, noise=0.1, drift=drift)
    if schedule_factory is None:
        schedule_factory = lambda: StaticRate(0.1)  # noqa: E731
    app = svm_application(dim=scale.dim, n_samplers=n_samplers,
                          schedule_factory=schedule_factory,
                          batch_size=batch_size, reservoir_capacity=256,
                          input_batch=8, tolerance=3e-3)
    job = TornadoJob(app, base_config(**config_overrides))
    stream = instance_stream(instances, UniformRate(scale.stream_rate))
    return WorkloadBundle("svm", job, stream,
                          {"instances": instances, "true_w": true_w})


def logreg_bundle(scale: Scale = SMALL, n_samplers: int = 4,
                  schedule_factory: Callable | None = None,
                  drift: float = 0.8, batch_size: int = 16,
                  **config_overrides: Any) -> WorkloadBundle:
    instances, true_w = pubmed_like(scale.n_instances, dim=scale.dim * 8,
                                    seed=scale.seed, drift=drift)
    if schedule_factory is None:
        schedule_factory = lambda: StaticRate(0.1)  # noqa: E731
    app = logreg_application(dim=scale.dim * 8, n_samplers=n_samplers,
                             schedule_factory=schedule_factory,
                             batch_size=batch_size,
                             reservoir_capacity=256, input_batch=8,
                             tolerance=3e-3)
    job = TornadoJob(app, base_config(**config_overrides))
    stream = instance_stream(instances, UniformRate(scale.stream_rate))
    return WorkloadBundle("logreg", job, stream,
                          {"instances": instances, "true_w": true_w})


def run_queries_per_epoch(bundle: WorkloadBundle, batch_size: int,
                          max_queries: int = 50,
                          settle: float = 0.05) -> list[float]:
    """Feed the bundle's stream and fork one branch query per epoch of
    ``batch_size`` tuples; returns the query latencies (the Fig. 5
    measurement loop)."""
    job = bundle.job
    job.feed(bundle.stream)
    total = len(bundle.stream)
    latencies: list[float] = []
    for count in range(batch_size, total + 1, batch_size):
        if len(latencies) >= max_queries:
            break
        job.run_until(
            lambda c=count: job.ingester.tuples_ingested >= c)
        job.run_for(settle)
        result = job.query_and_wait()
        latencies.append(result.latency)
    return latencies
