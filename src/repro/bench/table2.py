"""Table 2 and Figure 8a: the cost of asynchronism.

An SSSP branch loop is forked from the default initial guess (batch-mode
main loop, full activation) once half the stream has been ingested, under
three delay bounds.  The paper reports per-loop totals (running time,
iterations, updates, prepares) and the per-iteration running times.

Expected shapes: the synchronous loop (B=1) converges in the fewest
iterations and sends **zero** PREPARE messages; larger bounds need more
iterations and more prepares (at the largest bound, roughly one prepare
round per update); iterations of the synchronous loop take much longer to
terminate than asynchronous ones.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult
from repro.bench.workloads import SMALL, Scale, sssp_bundle

DELAY_BOUNDS = (1, 256, 65536)


def run_table2(scale: Scale = SMALL,
               delay_bounds: tuple[int, ...] = DELAY_BOUNDS,
               ingest_fraction: float = 0.5) -> ExperimentResult:
    """Fork one from-scratch SSSP branch loop per delay bound."""
    result = ExperimentResult(
        experiment="table2",
        title="SSSP branch loops under different delay bounds",
        columns=["delay_bound", "time_s", "iterations", "updates",
                 "prepares", "mean_iteration_s"],
    )
    iteration_series: dict[int, list[tuple[int, float]]] = {}
    summary: dict[int, dict] = {}
    for bound in delay_bounds:
        bundle = sssp_bundle(scale, delay_bound=bound,
                             main_loop_mode="batch", merge_policy="never",
                             report_interval=0.01)
        job = bundle.job
        job.feed(bundle.stream)
        cutoff = int(len(bundle.stream) * ingest_fraction)
        job.run_until(
            lambda: job.ingester.tuples_ingested >= cutoff)
        query = job.query(full_activation=True)
        outcome = job.wait_for_query(query)
        record = job.branch_record(query)
        totals = job.loop_totals(record.loop)
        times = job.branch_iteration_times(query)
        iteration_series[bound] = times
        elapsed = record.converged_at - record.forked_at
        iterations = (outcome.converged_iteration + 1
                      if outcome.converged_iteration >= 0 else 0)
        mean_iteration = elapsed / max(1, iterations)
        summary[bound] = dict(time=elapsed, iterations=iterations,
                              updates=totals["commits"],
                              prepares=totals["prepares"])
        result.add_row(delay_bound=bound, time_s=elapsed,
                       iterations=iterations,
                       updates=totals["commits"],
                       prepares=totals["prepares"],
                       mean_iteration_s=mean_iteration)
    sync = summary[delay_bounds[0]]
    widest = summary[delay_bounds[-1]]
    result.check("synchronous loop sends zero prepares",
                 sync["prepares"] == 0,
                 f"B=1 prepares={sync['prepares']}")
    result.check("asynchronous loops send prepares",
                 all(summary[b]["prepares"] > 0
                     for b in delay_bounds[1:]),
                 str({b: summary[b]["prepares"] for b in delay_bounds}))
    result.check(
        "synchronous loop needs the fewest iterations",
        sync["iterations"] <= min(summary[b]["iterations"]
                                  for b in delay_bounds[1:]),
        str({b: summary[b]["iterations"] for b in delay_bounds}))
    result.check(
        "largest bound needs the most iterations",
        widest["iterations"] >= max(summary[b]["iterations"]
                                    for b in delay_bounds[:-1]),
        str({b: summary[b]["iterations"] for b in delay_bounds}))
    sync_mean = sync["time"] / max(1, sync["iterations"])
    widest_mean = widest["time"] / max(1, widest["iterations"])
    result.check(
        "synchronous iterations take far longer each",
        sync_mean > widest_mean,
        f"B=1 mean={sync_mean:.4g}s "
        f"B={delay_bounds[-1]} mean={widest_mean:.4g}s")
    result.extras = iteration_series  # type: ignore[attr-defined]
    return result


def run_fig8a(scale: Scale = SMALL,
              delay_bounds: tuple[int, ...] = DELAY_BOUNDS
              ) -> ExperimentResult:
    """Per-iteration termination times of the Table 2 branch loops."""
    table2 = run_table2(scale, delay_bounds)
    series = table2.extras  # type: ignore[attr-defined]
    result = ExperimentResult(
        experiment="fig8a",
        title="SSSP branch-loop running time per iteration",
        columns=["delay_bound", "iteration", "elapsed_s"],
        checks=list(table2.checks),
    )
    for bound, times in series.items():
        if not times:
            continue
        start = times[0][1]
        for iteration, terminated_at in times:
            result.add_row(delay_bound=bound, iteration=iteration,
                           elapsed_s=terminated_at - start)
    return result
