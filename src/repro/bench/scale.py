"""Million-vertex scale benchmark: the columnar state engine A/B-ed
against the delta-path object store.

The protocol benches (``perf``, ``delta``, ``live``) measure the
simulated runtime end to end; this one isolates the layer the columnar
tentpole targets — **state apply**: committing each iteration's vertex
versions into the versioned store.  A 10⁶-vertex R-MAT graph is driven
through PageRank / SSSP / connected-components sweeps by the bulk
engine (:class:`repro.core.columnar.BulkRunner` — ``bincount`` /
``np.minimum.at`` passes over flat edge arrays), and every sweep's
changed vertices are committed twice, into:

* the **delta-path object store** (``delta_path=True`` — per-key
  Python chains, the baseline every prior PR optimised), and
* the **columnar store** (``columnar=True`` — one ``put_columns``
  column slab per sweep, folded by batched rebases).

Both stores receive byte-identical ``(key, iteration, value)`` data, and
the bench checks the final snapshots agree, so the speedup is purely the
layout.  Timing runs without tracemalloc; a second, untimed population
pass per layout records the tracemalloc peak — the memory axis of the
committed curve.  Output merges a ``"scale"`` section (per-iteration
wall-clock + rows, per-layout apply throughput and peak memory) into
``BENCH_perf.json``::

    python -m repro.bench scale [--quick]

``--check-baseline`` (the CI scale-smoke job) additionally requires a
committed full-size ``"scale"`` section in BENCH_perf.json whose
speedups meet the ≥5× acceptance floor.
"""

from __future__ import annotations

import json
import platform
import sys
import time
import tracemalloc
from typing import Any, Callable, Iterable

import numpy as np

from repro.bench.harness import ExperimentResult, merge_bench_json
from repro.core.columnar import BulkRunner
from repro.datagen.graphs import rmat_edges_fast
from repro.storage.versioned import VersionedStore

#: (n_vertices, n_edges): full = the 10⁶-vertex acceptance size, quick =
#: CI smoke.  Edge factor 4 keeps R-MAT's power law while the graph
#: still fits a laptop.
FULL_SCALE = (1 << 20, 4 << 20)
QUICK_SCALE = (1 << 14, 4 << 14)
PAGERANK_SWEEPS = 5
MAX_SWEEPS = 30
#: Apply-throughput speedup floors, columnar over delta-path object
#: store: the acceptance floor at full size, looser in CI smoke (shared
#: runners; small slabs amortise less).
APPLY_FLOOR = 5.0
QUICK_APPLY_FLOOR = 2.0


def _graph(n_vertices: int, n_edges: int, seed: int
           ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    src, dst = rmat_edges_fast(n_vertices, n_edges, rng)
    weights = rng.integers(1, 10, size=len(src)).astype(np.float64)
    return src, dst, weights


def _sweep_steps(name: str, n_vertices: int, src: np.ndarray,
                 dst: np.ndarray, weights: np.ndarray
                 ) -> list[tuple[int, np.ndarray, np.ndarray]]:
    """Materialise one workload's sweep steps once; every store layout
    then replays the identical slabs."""
    runner = BulkRunner(store=None)
    if name == "pagerank":
        sweep: Iterable = runner.pagerank_sweep(
            n_vertices, src, dst, sweeps=PAGERANK_SWEEPS)
    elif name == "sssp":
        sweep = runner.sssp_sweep(n_vertices, src, dst, weights, root=0,
                                  max_sweeps=MAX_SWEEPS)
    elif name == "components":
        sweep = runner.components_sweep(n_vertices, src, dst,
                                        max_sweeps=MAX_SWEEPS)
    else:  # pragma: no cover - guarded by the workload list
        raise ValueError(name)
    return list(sweep)


def _make_store(columnar: bool) -> VersionedStore:
    return VersionedStore(delta_path=True, columnar=columnar)


def _apply_steps(store: VersionedStore,
                 steps: list[tuple[int, np.ndarray, np.ndarray]],
                 timed: bool) -> dict[str, Any]:
    """Replay the sweep slabs into one store, timing each iteration's
    apply (the curve) when ``timed``.

    The columnar side applies each step as one ``put_columns`` slab; the
    object-store baseline gets the same data as native Python triples
    through ``put_many`` (pre-converted outside the timed region — the
    scalar protocol path writes plain Python objects, so charging the
    baseline for numpy unboxing would flatter the columnar side)."""
    runner = BulkRunner(store)
    if not store.columnar:
        scalar_steps = [(iteration, changed.tolist(), values.tolist())
                        for iteration, changed, values in steps]
    curve = []
    rows = 0
    apply_s = 0.0
    for index, (iteration, changed, values) in enumerate(steps):
        started = time.perf_counter() if timed else 0.0
        if store.columnar:
            count = runner.apply(iteration, changed, values)
        else:
            _it, keys, plain = scalar_steps[index]
            count = store.put_many(
                runner.loop,
                ((key, iteration, value)
                 for key, value in zip(keys, plain)))
        if timed:
            elapsed = time.perf_counter() - started
            curve.append({"iteration": iteration, "rows": count,
                          "apply_s": elapsed})
            apply_s += elapsed
        rows += count
    return {"rows": rows, "apply_s": apply_s, "curve": curve,
            "rows_per_s": rows / apply_s if apply_s else 0.0,
            "store": store, "runner": runner}


def _peak_memory_mb(make_run: Callable[[], Any]) -> float:
    """tracemalloc peak of one untimed population pass (tracemalloc
    skews timings, so memory gets its own pass)."""
    tracemalloc.start()
    try:
        make_run()
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / 1e6


def _snapshot_digest(view: dict[Any, Any]) -> tuple[int, float]:
    """Cheap equality witness over a big snapshot: size + value sum
    (values are floats/ints; identical data ⇒ identical sums)."""
    total = 0.0
    for value in view.values():
        total += float(value)
    return len(view), total


def _run_workload(name: str, n_vertices: int, n_edges: int,
                  seed: int) -> dict[str, Any]:
    src, dst, weights = _graph(n_vertices, n_edges, seed)
    steps = _sweep_steps(name, n_vertices, src, dst, weights)

    sides: dict[str, dict[str, Any]] = {}
    for side, columnar in (("delta", False), ("columnar", True)):
        run = _apply_steps(_make_store(columnar), steps, timed=True)
        run["peak_mb"] = _peak_memory_mb(
            lambda c=columnar: _apply_steps(_make_store(c), steps,
                                            timed=False))
        started = time.perf_counter()
        view = run["store"].snapshot(run["runner"].loop)
        run["snapshot_s"] = time.perf_counter() - started
        run["digest"] = _snapshot_digest(view)
        run["versions"] = run["store"].version_count()
        sides[side] = run

    delta, columnar = sides["delta"], sides["columnar"]
    speedup = (columnar["rows_per_s"] / delta["rows_per_s"]
               if delta["rows_per_s"] else 0.0)
    strip = ("store", "runner")
    return {
        "name": name,
        "n_vertices": n_vertices,
        "n_edges": n_edges,
        "sweeps": len(steps),
        "rows": delta["rows"],
        "apply_speedup": speedup,
        "memory_ratio": (delta["peak_mb"] / columnar["peak_mb"]
                         if columnar["peak_mb"] else 0.0),
        "snapshots_match": (delta["digest"] == columnar["digest"]
                            and delta["versions"] == columnar["versions"]),
        "delta": {k: v for k, v in delta.items() if k not in strip},
        "columnar": {k: v for k, v in columnar.items() if k not in strip},
    }


def _load_json(json_path: str) -> dict[str, Any]:
    try:
        with open(json_path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return {}


def run_scale(quick: bool = False,
              json_path: str | None = "BENCH_perf.json",
              *, size: tuple[int, int] | None = None,
              check_baseline: bool = False,
              seed: int = 42) -> ExperimentResult:
    """Run the scale A/B, merge the ``"scale"`` section into
    ``json_path`` and return the experiment report.  ``size`` overrides
    shrink below ``--quick`` for the test suite.  ``check_baseline``
    (CI) validates the *committed* full-size section instead of
    overwriting it."""
    n_vertices, n_edges = size or (QUICK_SCALE if quick else FULL_SCALE)
    workloads = [_run_workload(name, n_vertices, n_edges, seed)
                 for name in ("pagerank", "sssp", "components")]
    by_name = {w["name"]: w for w in workloads}

    result = ExperimentResult(
        experiment="scale",
        title=(f"Columnar state engine at {n_vertices} vertices / "
               f"{n_edges} edges: state-apply rows/sec, columnar vs "
               f"delta object store"),
        columns=["workload", "sweeps", "rows", "delta_rps",
                 "columnar_rps", "speedup", "mem_ratio"],
        notes=("identical slabs applied to both layouts; rows/sec is "
               "store state-apply throughput (compute excluded); "
               "mem_ratio = delta peak / columnar peak (tracemalloc)"),
    )
    for workload in workloads:
        result.add_row(workload=workload["name"],
                       sweeps=workload["sweeps"],
                       rows=workload["rows"],
                       delta_rps=workload["delta"]["rows_per_s"],
                       columnar_rps=workload["columnar"]["rows_per_s"],
                       speedup=workload["apply_speedup"],
                       mem_ratio=workload["memory_ratio"])

    result.check("identical snapshots + version counts, both layouts",
                 all(w["snapshots_match"] for w in workloads))
    floor = QUICK_APPLY_FLOOR if quick else APPLY_FLOOR
    pagerank = by_name["pagerank"]
    result.check(
        f"pagerank state-apply ≥{floor}x columnar over delta"
        + (" (smoke)" if quick else ""),
        pagerank["apply_speedup"] >= floor,
        f"speedup={pagerank['apply_speedup']:.2f}x")
    result.check("sssp state-apply no slower on the columnar layout",
                 by_name["sssp"]["apply_speedup"] >= 1.0,
                 f"speedup={by_name['sssp']['apply_speedup']:.2f}x")
    result.check("columnar peak memory below the object store's",
                 pagerank["memory_ratio"] > 1.0,
                 f"delta/columnar={pagerank['memory_ratio']:.2f}x")

    report = {
        "bench": "columnar_scale",
        "version": 1,
        "quick": quick,
        "python": platform.python_version(),
        "n_vertices": n_vertices,
        "n_edges": n_edges,
        "workloads": {w["name"]: {k: w[k] for k in
                                  ("sweeps", "rows", "apply_speedup",
                                   "memory_ratio", "snapshots_match",
                                   "delta", "columnar")}
                      for w in workloads},
    }
    result.extras["report"] = report

    if check_baseline:
        committed = _load_json(json_path or "BENCH_perf.json"
                               ).get("scale", {})
        committed_pr = committed.get("workloads", {}).get("pagerank", {})
        committed_speedup = committed_pr.get("apply_speedup", 0.0)
        committed_ok = (not committed.get("quick", True)
                        and committed_speedup >= APPLY_FLOOR)
        result.check(
            f"committed full-size baseline meets the ≥{APPLY_FLOOR}x "
            "acceptance floor",
            committed_ok,
            f"committed pagerank speedup={committed_speedup}")
    elif json_path is not None:
        merge_bench_json(json_path, {"scale": report})
    return result


def main(argv: list[str]) -> int:
    result = run_scale(quick="--quick" in argv,
                       check_baseline="--check-baseline" in argv)
    print(result.report())
    return 0 if result.all_checks_pass else 1


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main(sys.argv[1:]))
