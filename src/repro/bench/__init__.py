"""Benchmark harness: one experiment module per paper table/figure."""

from repro.bench.ablations import (run_ablation_activation,
                                   run_ablation_sampling,
                                   run_ablation_storage)
from repro.bench.delta import run_delta
from repro.bench.fig5 import run_fig5
from repro.bench.fig6 import run_fig6a, run_fig6b
from repro.bench.fig7 import run_fig7a, run_fig7b
from repro.bench.fig8 import run_failure_figure, run_fig8b
from repro.bench.fig9 import run_fig9
from repro.bench.harness import ExperimentResult, ShapeCheck, percentile
from repro.bench.live import run_live_bench
from repro.bench.perf import run_perf
from repro.bench.placement import run_placement
from repro.bench.scale import run_scale
from repro.bench.skew import run_skew
from repro.bench.table1 import run_table1
from repro.bench.table2 import run_fig8a, run_table2
from repro.bench.table3 import run_table3
from repro.bench.tenants import run_tenants
from repro.bench.wire import run_wire
from repro.bench.workloads import (MEDIUM, SMALL, Scale, kmeans_bundle,
                                   logreg_bundle, pagerank_bundle,
                                   sssp_bundle, svm_bundle)

__all__ = [
    "ExperimentResult",
    "MEDIUM",
    "SMALL",
    "Scale",
    "ShapeCheck",
    "kmeans_bundle",
    "logreg_bundle",
    "pagerank_bundle",
    "percentile",
    "run_ablation_activation",
    "run_ablation_sampling",
    "run_ablation_storage",
    "run_delta",
    "run_failure_figure",
    "run_fig5",
    "run_fig6a",
    "run_fig6b",
    "run_fig7a",
    "run_fig7b",
    "run_fig8a",
    "run_fig8b",
    "run_fig9",
    "run_live_bench",
    "run_perf",
    "run_placement",
    "run_scale",
    "run_skew",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_tenants",
    "run_wire",
    "sssp_bundle",
    "svm_bundle",
]
