"""Run the full experiment harness and print every table/figure.

Usage::

    python -m repro.bench                 # all experiments, small scale
    python -m repro.bench --medium        # larger scale (slower)
    python -m repro.bench fig5 table2     # a subset
    python -m repro.bench --trace fig8c   # record + print protocol phases
    python -m repro.bench perf --quick    # wall-clock kernel benchmarks
                                          # (writes BENCH_perf.json)
    python -m repro.bench live            # multiprocessing backend scaling
                                          # (merges into BENCH_perf.json)
    python -m repro.bench scale --quick   # columnar store vs object store
                                          # at R-MAT scale (merges into
                                          # BENCH_perf.json; add
                                          # --check-baseline in CI)
    python -m repro.bench tenants --quick # zipf multi-tenant JobManager
                                          # (merges into BENCH_perf.json)
    python -m repro.bench placement       # resource-aware placement A/B +
                                          # critical-path bottleneck oracle
                                          # (merges into BENCH_perf.json;
                                          # add --check-baseline in CI)
    python -m repro.bench wire --quick    # columnar-wire A/B: column runs
                                          # vs per-row scatter messages
                                          # (merges into BENCH_perf.json;
                                          # add --check-baseline in CI)
"""

from __future__ import annotations

import sys
import time
from typing import Callable

from repro.bench import (MEDIUM, SMALL, run_ablation_activation,
                         run_ablation_sampling, run_ablation_storage,
                         run_delta, run_failure_figure, run_fig5,
                         run_fig6a, run_fig6b, run_fig7a, run_fig7b,
                         run_fig8a, run_fig8b, run_fig9, run_live_bench,
                         run_perf, run_placement, run_scale, run_skew,
                         run_table1,
                         run_table2, run_table3, run_tenants, run_wire)
from repro.bench.harness import ExperimentResult


def _experiments(scale, trace: bool = False, quick: bool = False,
                 check_baseline: bool = False
                 ) -> dict[str, Callable[[], ExperimentResult]]:
    return {
        "table1": lambda: run_table1(scale),
        "fig5-sssp": lambda: run_fig5("sssp", scale),
        "fig5-pagerank": lambda: run_fig5("pagerank", scale),
        "fig5-kmeans": lambda: run_fig5("kmeans", scale),
        "fig6a": lambda: run_fig6a(scale),
        "fig6b": lambda: run_fig6b(scale),
        "fig7a": lambda: run_fig7a(scale),
        "fig7b": lambda: run_fig7b(scale),
        "table2": lambda: run_table2(scale),
        "fig8a": lambda: run_fig8a(scale),
        "fig8b": lambda: run_fig8b(scale),
        "fig8c": lambda: run_failure_figure("master", scale, trace=trace),
        "fig8d": lambda: run_failure_figure("processor", scale,
                                            trace=trace),
        "fig9": lambda: run_fig9(scale),
        "skew": lambda: run_skew(),
        "table3": lambda: run_table3(scale),
        "ablation-activation": lambda: run_ablation_activation(scale),
        "ablation-sampling": lambda: run_ablation_sampling(scale),
        "ablation-storage": lambda: run_ablation_storage(scale),
        # Wall-clock benchmarks; write/merge BENCH_perf.json.  Only run
        # when asked for by name (see main below): unlike the rest they
        # measure the host machine, not the simulated cluster.
        "perf": lambda: run_perf(quick=quick),
        "delta": lambda: run_delta(quick=quick),
        "live": lambda: run_live_bench(quick=quick),
        "placement": lambda: run_placement(
            quick=quick, check_baseline=check_baseline),
        "scale": lambda: run_scale(quick=quick,
                                   check_baseline=check_baseline),
        "tenants": lambda: run_tenants(quick=quick),
        "wire": lambda: run_wire(quick=quick,
                                 check_baseline=check_baseline),
    }


def main(argv: list[str]) -> int:
    scale = MEDIUM if "--medium" in argv else SMALL
    trace = "--trace" in argv
    quick = "--quick" in argv
    check_baseline = "--check-baseline" in argv
    wanted = [a for a in argv if not a.startswith("-")]
    experiments = _experiments(scale, trace=trace, quick=quick,
                               check_baseline=check_baseline)
    if not wanted:
        experiments.pop("perf")
        experiments.pop("delta")
        experiments.pop("live")
        experiments.pop("placement")
        experiments.pop("scale")
        experiments.pop("tenants")
        experiments.pop("wire")
    if wanted:
        unknown = [w for w in wanted
                   if not any(k.startswith(w) for k in experiments)]
        if unknown:
            print(f"unknown experiments: {unknown}")
            print(f"available: {sorted(experiments)}")
            return 2
        experiments = {k: v for k, v in experiments.items()
                       if any(k.startswith(w) for w in wanted)}
    failures = 0
    for name, runner in experiments.items():
        started = time.perf_counter()
        result = runner()
        elapsed = time.perf_counter() - started
        print(result.report())
        for bound, table in sorted(
                result.extras.get("phase_tables", {}).items()):
            print(f"-- protocol phases (delay bound {bound}) --")
            print(table)
        print(f"(wall time: {elapsed:.1f}s)")
        print()
        if not result.all_checks_pass:
            failures += 1
    if failures:
        print(f"{failures} experiment(s) had failing shape checks")
        return 1
    print("all shape checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
