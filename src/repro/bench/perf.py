"""Wall-clock kernel benchmarks: the repo's perf trajectory.

Unlike every other bench module, which measures *virtual* time on the
simulated cluster, this one measures *wall-clock* events per second of
the kernel itself, A/B-ing the fast path (timer wheel + tombstone
compaction + same-instant coalescing) against the legacy heap-only
kernel (``fast_path=False``), which reproduces the pre-fast-path
implementation event for event.

Scenarios:

* ``timer_churn`` — the dominant event class in real workloads: timers
  scheduled and then almost always cancelled (retransmits, acker
  timeouts).  Exercises the timer wheel's O(1) schedule/true-cancel
  against heap tombstones.
* ``cancel_churn`` — the same churn through plain :meth:`schedule`,
  isolating tombstone compaction in the event heap.
* ``coalesce_burst`` — same-instant message bursts through the network
  fabric, isolating delivery coalescing.
* ``fig8d_small`` — a shrunk Fig. 8d run (SSSP branch fork with a
  mid-run processor failure): end-to-end speedup on a real protocol
  workload.
* ``fig9b_small`` — a shrunk Fig. 9b run (SSSP under a fabric capacity
  ceiling): end-to-end speedup on the throughput workload.

The harness also re-checks the determinism oracle (same seed ⇒ byte
identical flight-recorder trace, fast vs legacy) and writes everything
to ``BENCH_perf.json`` so CI can compare runs over time::

    python -m repro.bench perf [--quick]      # run + write BENCH_perf.json
    python -m repro.bench.perf --compare BASELINE.json CURRENT.json
"""

from __future__ import annotations

import json
import platform
import sys
import time
from collections import deque
from dataclasses import replace
from typing import Any, Callable

from repro.bench.harness import ExperimentResult, merge_bench_json
from repro.bench.skew import skew_section
from repro.bench.workloads import SMALL, Scale, sssp_bundle
from repro.simulator import Actor, Network, Simulator

#: Shrunk Fig. 8d scale (same shape as tests/test_obs_determinism.py).
TINY = replace(SMALL, n_vertices=80, n_edges=320, stream_rate=4000.0)
FIG8D_FULL = replace(SMALL, n_vertices=160, n_edges=800,
                     stream_rate=4000.0)
FIG9B_NET_CAPACITY = 150_000.0


def _noop() -> None:
    pass


# ------------------------------------------------------------- scenarios
def _timer_churn(fast_path: bool, steps: int, fanout: int = 8,
                 horizon: float = 0.5, step_gap: float = 1e-5) -> Simulator:
    """Schedule ``fanout`` fixed-delay timers per step and cancel them two
    steps later — the retransmit/acker pattern.  On the heap each cancel
    leaves a tombstone alive for ``horizon`` virtual seconds, so the heap
    carries ~``fanout * horizon / step_gap`` dead entries at steady state;
    the wheel removes them in O(1)."""
    sim = Simulator(seed=1, fast_path=fast_path)
    window: deque[list] = deque()
    state = {"left": steps}

    def step() -> None:
        window.append([sim.schedule_timer(horizon, _noop)
                       for _ in range(fanout)])
        if len(window) > 2:
            for timer in window.popleft():
                timer.cancel()
        state["left"] -= 1
        if state["left"] > 0:
            sim.schedule(step_gap, step)

    sim.schedule(0.0, step)
    sim.run()
    return sim


def _cancel_churn(fast_path: bool, steps: int, fanout: int = 8,
                  horizon: float = 0.5, step_gap: float = 1e-5) -> Simulator:
    """Same churn through plain ``schedule`` — both modes keep the events
    on the heap, so any win comes from tombstone compaction alone."""
    sim = Simulator(seed=1, fast_path=fast_path)
    window: deque[list] = deque()
    state = {"left": steps}

    def step() -> None:
        window.append([sim.schedule(horizon, _noop)
                       for _ in range(fanout)])
        if len(window) > 2:
            for event in window.popleft():
                event.cancel()
        state["left"] -= 1
        if state["left"] > 0:
            sim.schedule(step_gap, step)

    sim.schedule(0.0, step)
    sim.run()
    return sim


class _Sink(Actor):
    def handle(self, message: Any, sender: str) -> float:
        return 0.0


def _coalesce_burst(fast_path: bool, bursts: int,
                    fanout: int = 64) -> Simulator:
    """Bursts of same-instant sends on one link: the fast path folds each
    burst's deliveries into a single heap entry."""
    sim = Simulator(seed=1, fast_path=fast_path)
    network = Network(sim, latency=5e-4)
    _Sink(sim, "src")
    _Sink(sim, "sink")
    state = {"left": bursts}

    def burst() -> None:
        for index in range(fanout):
            network.send("src", "sink", index)
        state["left"] -= 1
        if state["left"] > 0:
            sim.schedule(1e-3, burst)

    sim.schedule(0.0, burst)
    sim.run()
    return sim


def _fig8d_config(fast_path: bool, trace: bool = False) -> dict[str, Any]:
    return dict(delay_bound=256, main_loop_mode="batch",
                merge_policy="never", report_interval=0.01,
                gather_cost=1e-3, seed=7, fast_path=fast_path,
                trace_enabled=trace)


def _fig8d_run(fast_path: bool, scale: Scale,
               trace: bool = False):
    """One shrunk Fig. 8d run; returns the job after convergence.  The
    workload build (datagen) happens inside, so callers time only the
    returned closure's ``run`` part via :func:`_timed`."""
    bundle = sssp_bundle(scale, **_fig8d_config(fast_path, trace=trace))
    job = bundle.job

    def run() -> Simulator:
        job.feed(bundle.stream)
        cutoff = len(bundle.stream) // 2
        job.run_until(lambda: job.ingester.tuples_ingested >= cutoff)
        query_id = job.query(full_activation=True)
        job.failures.kill_at(job.sim.now + 0.05, "proc-1",
                             recover_after=0.3)
        job.run_until(lambda: job.ingester.query_done(query_id))
        return job.sim

    return job, run


def _fig9b_run(fast_path: bool, scale: Scale):
    """One shrunk Fig. 9b point: SSSP under the fabric capacity ceiling,
    run to quiescence."""
    fast_scale = Scale(**{**scale.__dict__, "stream_rate": 1e5})
    bundle = sssp_bundle(fast_scale, n_processors=8, n_nodes=4,
                         net_capacity=FIG9B_NET_CAPACITY,
                         report_interval=0.02, fast_path=fast_path)
    job = bundle.job

    def run() -> Simulator:
        job.feed(bundle.stream)
        total = len(bundle.stream)
        job.run_until(lambda: job.ingester.tuples_ingested >= total)
        job.run_until(lambda: job.quiescent(), max_events=100_000_000)
        return job.sim

    return job, run


# ------------------------------------------------------------ measurement
def _timed(runner: Callable[[], Simulator]) -> dict[str, float]:
    started = time.perf_counter()
    sim = runner()
    wall = time.perf_counter() - started
    events = sim.events_processed
    return {"events": events, "wall_s": wall,
            "events_per_s": events / wall if wall > 0 else 0.0}


def _ab(name: str, make: Callable[[bool], Callable[[], Simulator]],
        repeats: int = 1) -> dict[str, Any]:
    """A/B one scenario.  Runs alternate legacy/fast to decorrelate
    machine drift; each side reports its best run (wall-clock noise is
    one-sided: interference only ever slows a run down)."""
    legacy_runs = []
    fast_runs = []
    for _ in range(repeats):
        legacy_runs.append(_timed(make(False)))
        fast_runs.append(_timed(make(True)))
    legacy = max(legacy_runs, key=lambda run: run["events_per_s"])
    fast = max(fast_runs, key=lambda run: run["events_per_s"])
    speedup = (fast["events_per_s"] / legacy["events_per_s"]
               if legacy["events_per_s"] else 0.0)
    return {"name": name, "legacy": legacy, "fast": fast,
            "speedup": speedup,
            "events_match": all(
                run["events"] == legacy["events"]
                for run in legacy_runs + fast_runs)}


def run_perf(quick: bool = False,
             json_path: str | None = "BENCH_perf.json",
             *, steps: int | None = None, bursts: int | None = None,
             fig_scale: Scale | None = None,
             skew_sizes: dict[str, Any] | None = None) -> ExperimentResult:
    """Run every scenario fast-vs-legacy, write ``json_path`` (unless
    ``None``) and return the usual experiment report.  The keyword
    overrides shrink individual scenarios below ``--quick`` size; the
    test suite uses them to check the report shape in about a second.
    ``skew_sizes`` forwards size overrides to the skew section (virtual
    time, so unlike the wall-clock scenarios it is machine independent
    and comparable across baselines at the same sizes)."""
    if steps is None:
        steps = 20_000 if quick else 60_000
    if bursts is None:
        bursts = 1_000 if quick else 4_000
    fig8d_scale = fig_scale or (TINY if quick else FIG8D_FULL)
    fig9b_scale = fig_scale or (TINY if quick else SMALL)
    repeats = 1 if quick else 3

    scenarios = [
        _ab("timer_churn",
            lambda fast: (lambda: _timer_churn(fast, steps)),
            repeats=repeats),
        _ab("cancel_churn",
            lambda fast: (lambda: _cancel_churn(fast, steps)),
            repeats=repeats),
        _ab("coalesce_burst",
            lambda fast: (lambda: _coalesce_burst(fast, bursts)),
            repeats=repeats),
        _ab("fig8d_small",
            lambda fast: _fig8d_run(fast, fig8d_scale)[1],
            repeats=repeats),
        _ab("fig9b_small",
            lambda fast: _fig9b_run(fast, fig9b_scale)[1],
            repeats=repeats),
    ]

    # Determinism oracle: the fast path must not change a single byte of
    # the flight-recorder trace.
    digests = {}
    for mode, fast in (("legacy", False), ("fast", True)):
        job, runner = _fig8d_run(fast, fig_scale or TINY, trace=True)
        runner()
        digests[mode] = job.trace.digest()
    identical = digests["legacy"] == digests["fast"]

    result = ExperimentResult(
        experiment="perf",
        title="Kernel fast path: wall-clock events/sec, fast vs legacy",
        columns=["scenario", "events", "legacy_eps", "fast_eps",
                 "speedup"],
        notes=("wall-clock, not virtual time; legacy = fast_path=False "
               "(pre-fast-path kernel)"),
    )
    for scenario in scenarios:
        result.add_row(scenario=scenario["name"],
                       events=scenario["fast"]["events"],
                       legacy_eps=scenario["legacy"]["events_per_s"],
                       fast_eps=scenario["fast"]["events_per_s"],
                       speedup=scenario["speedup"])
    churn = next(s for s in scenarios if s["name"] == "timer_churn")
    result.check("timer churn ≥2x events/sec on the fast path",
                 churn["speedup"] >= 2.0,
                 f"speedup={churn['speedup']:.2f}x")
    result.check("fast and legacy kernels process identical event counts",
                 all(s["events_match"] for s in scenarios))
    result.check("same seed ⇒ byte-identical trace (fast vs legacy)",
                 identical, f"digest={digests['fast'][:16]}…")

    # Live-migration skew benchmark: virtual-time ratios, so the numbers
    # are exact replay facts a baseline comparison can hold to.
    skew = skew_section(**(skew_sizes or {}))
    result.add_row(scenario="skew_live_vs_pause",
                   events=skew["modes"]["live"]["tuples"],
                   legacy_eps=skew["modes"]["pause"]["throughput"],
                   fast_eps=skew["modes"]["live"]["throughput"],
                   speedup=skew["live_over_pause"])
    result.check("live migration ≥2x stop-the-world on planted skew",
                 skew["live_over_pause"] >= 2.0,
                 f"live/pause={skew['live_over_pause']:.2f}x "
                 "(virtual-time throughput)")
    result.check("same seed ⇒ byte-identical trace under live migration",
                 skew["determinism"]["identical"])

    report = {
        "bench": "kernel_fast_path",
        "version": 1,
        "quick": quick,
        "python": platform.python_version(),
        "scenarios": {s["name"]: {k: s[k] for k in
                                  ("legacy", "fast", "speedup",
                                   "events_match")}
                      for s in scenarios},
        "determinism": {"digests": digests, "identical": identical},
        "skew": skew,
    }
    result.extras["report"] = report
    if json_path is not None:
        # Sibling benches merge their own sections into the same file;
        # carry them over instead of clobbering them.
        merge_bench_json(json_path, report, replace_base=True)
    return result


# ------------------------------------------------------------- comparison
def compare_reports(baseline: dict[str, Any],
                    current: dict[str, Any]) -> str:
    """Human-readable comparison of two ``BENCH_perf.json`` payloads
    (what the CI perf-smoke job prints)."""
    lines = [f"{'scenario':<16} {'base eps':>12} {'curr eps':>12} "
             f"{'ratio':>7}  {'base x':>7} {'curr x':>7}"]
    names = sorted(set(baseline.get("scenarios", {}))
                   | set(current.get("scenarios", {})))
    for name in names:
        base = baseline.get("scenarios", {}).get(name)
        curr = current.get("scenarios", {}).get(name)
        if base is None or curr is None:
            lines.append(f"{name:<16} {'(only in one report)':>12}")
            continue
        base_eps = base["fast"]["events_per_s"]
        curr_eps = curr["fast"]["events_per_s"]
        ratio = curr_eps / base_eps if base_eps else 0.0
        lines.append(f"{name:<16} {base_eps:>12.0f} {curr_eps:>12.0f} "
                     f"{ratio:>6.2f}x  {base['speedup']:>6.2f}x "
                     f"{curr['speedup']:>6.2f}x")
    base_det = baseline.get("determinism", {}).get("identical")
    curr_det = current.get("determinism", {}).get("identical")
    lines.append(f"determinism identical: baseline={base_det} "
                 f"current={curr_det}")
    base_skew = baseline.get("skew")
    curr_skew = current.get("skew")
    if base_skew or curr_skew:
        def _skew_line(tag: str, skew: dict[str, Any] | None) -> str:
            if not skew:
                return f"skew ({tag}): (absent)"
            return (f"skew ({tag}): live/pause="
                    f"{skew['live_over_pause']:.2f}x at "
                    f"{skew['n_vertices']}v/{skew['n_edges']}e, "
                    f"deterministic={skew['determinism']['identical']}")
        lines.append(_skew_line("baseline", base_skew))
        lines.append(_skew_line("current", curr_skew))
        lines.append("(skew is virtual time — comparable across machines "
                     "at the same sizes.)")
    lines.append("(eps = fast-path events/sec, wall-clock; x = speedup "
                 "over the legacy kernel. Ratios across machines are "
                 "indicative only.)")
    return "\n".join(lines)


def main(argv: list[str]) -> int:
    if argv and argv[0] == "--compare":
        if len(argv) != 3:
            print("usage: python -m repro.bench.perf --compare "
                  "BASELINE.json CURRENT.json")
            return 2
        with open(argv[1], encoding="utf-8") as handle:
            baseline = json.load(handle)
        with open(argv[2], encoding="utf-8") as handle:
            current = json.load(handle)
        print(compare_reports(baseline, current))
        return 0
    quick = "--quick" in argv
    result = run_perf(quick=quick)
    print(result.report())
    return 0 if result.all_checks_pass else 1


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main(sys.argv[1:]))
