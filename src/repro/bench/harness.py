"""Experiment harness: result containers, table formatting, shape checks.

Every experiment module produces an :class:`ExperimentResult` whose rows
mirror a table or figure of the paper.  Absolute numbers live in virtual
seconds on a simulated cluster and are not expected to match the paper;
the *shape checks* assert the relationships that should reproduce (who
wins, what grows, where it flattens).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable

import numpy as np

#: Top-level sections of ``BENCH_perf.json`` owned by sibling bench
#: writers (the perf bench owns everything else at the top level).
BENCH_SECTIONS = ("delta", "live", "placement", "scale", "tenants",
                  "wire")


def merge_bench_json(json_path: str, updates: dict[str, Any],
                     replace_base: bool = False) -> dict[str, Any]:
    """Read-modify-write merge of ``updates`` into the shared benchmark
    JSON file — the one place every bench writer goes through, so no
    writer can clobber a sibling's section again.

    Default mode (section writers: ``merge_bench_json(path, {"delta":
    report})``) keeps every previous top-level key that ``updates`` does
    not name.  ``replace_base=True`` (the perf writer, which owns the
    top level) rebuilds the payload from ``updates`` and carries over
    only the known sibling sections (:data:`BENCH_SECTIONS`) from the
    previous file.  A missing or unparsable file merges as empty.

    The written file always carries a *neutral* root: ``"bench":
    "merged"`` with per-writer provenance under ``"sections"`` (the perf
    writer's root-level ``bench`` id moves to ``sections["perf"]``, each
    known section's own ``bench`` id is indexed by its section name) —
    the merged artifact never masquerades as one writer's report.
    Returns the merged payload as written.
    """
    try:
        with open(json_path, encoding="utf-8") as handle:
            previous = json.load(handle)
    except (OSError, json.JSONDecodeError):
        previous = {}
    prev_sections = previous.get("sections")
    sections = dict(prev_sections) if isinstance(prev_sections, dict) \
        else {}
    if replace_base:
        payload = dict(updates)
        for section in BENCH_SECTIONS:
            if section in previous and section not in payload:
                payload[section] = previous[section]
    else:
        payload = dict(previous)
        payload.update(updates)
    payload.pop("sections", None)
    root_bench = payload.pop("bench", None)
    if root_bench and root_bench != "merged":
        sections["perf"] = root_bench
    for name in BENCH_SECTIONS:
        entry = payload.get(name)
        if isinstance(entry, dict) and entry.get("bench"):
            sections[name] = entry["bench"]
    payload["bench"] = "merged"
    if sections:
        payload["sections"] = sections
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


@dataclass
class ShapeCheck:
    """One qualitative assertion about an experiment's outcome."""

    name: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - formatting
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.name}" + (f" — {self.detail}"
                                          if self.detail else "")


@dataclass
class ExperimentResult:
    """Rows reproducing one table/figure, plus its shape checks."""

    experiment: str
    title: str
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    checks: list[ShapeCheck] = field(default_factory=list)
    notes: str = ""
    #: Raw side data (e.g. time series) for downstream experiments.
    extras: dict[str, Any] = field(default_factory=dict)

    def add_row(self, **values: Any) -> None:
        self.rows.append(values)

    def check(self, name: str, passed: bool, detail: str = "") -> None:
        self.checks.append(ShapeCheck(name, bool(passed), detail))

    @property
    def all_checks_pass(self) -> bool:
        return all(check.passed for check in self.checks)

    def column(self, name: str) -> list[Any]:
        return [row.get(name) for row in self.rows]

    def table(self) -> str:
        """Plain-text aligned table of the rows."""
        def fmt(value: Any) -> str:
            if value is None:
                return "-"
            if isinstance(value, float):
                return f"{value:.4g}"
            return str(value)

        header = [str(c) for c in self.columns]
        body = [[fmt(row.get(c)) for c in self.columns]
                for row in self.rows]
        widths = [max(len(header[i]),
                      *(len(line[i]) for line in body)) if body
                  else len(header[i])
                  for i in range(len(header))]
        lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
        lines.append("  ".join("-" * w for w in widths))
        for line in body:
            lines.append("  ".join(cell.ljust(w)
                                   for cell, w in zip(line, widths)))
        return "\n".join(lines)

    def report(self) -> str:
        parts = [f"== {self.experiment}: {self.title} ==", self.table()]
        if self.notes:
            parts.append(f"note: {self.notes}")
        for check in self.checks:
            parts.append(str(check))
        return "\n".join(parts)


def percentile(values: Iterable[float], q: float = 99.0) -> float:
    data = list(values)
    if not data:
        return 0.0
    return float(np.percentile(data, q))


def monotone_decreasing(values: list[float], slack: float = 0.0) -> bool:
    """True if each value is ≤ the previous (with relative slack)."""
    return all(b <= a * (1.0 + slack) for a, b in zip(values, values[1:]))


def flattens(values: list[float], knee: int,
             early_factor: float = 2.0) -> bool:
    """True if the improvement before ``knee`` dwarfs the one after it."""
    if knee <= 0 or knee >= len(values) - 1:
        return False
    early_gain = values[0] - values[knee]
    late_gain = values[knee] - values[-1]
    return early_gain > early_factor * max(late_gain, 0.0)
