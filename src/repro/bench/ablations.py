"""Ablation studies for the design choices DESIGN.md calls out.

1. **Fork activation** — queries with the exact in-flight activation set
   vs full re-activation of every vertex: minimal activation is what makes
   warm queries cheap.
2. **Sampling discipline** — SGD with reservoir sampling (uniform over the
   whole stream, the paper's correctness condition) vs a recency-biased
   buffer: the biased sampler's branch results fit the recent data but are
   far from the optimum over *all* data.
3. **Storage backend** — disk (PostgreSQL-like) vs memory (LMDB-like)
   flush costs: the synchronous flush-before-progress rule makes branch
   latency track the backend.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import HingeLoss, InstanceRouter, SGDProgram, \
    StaticRate
from repro.algorithms.sgd import PARAM
from repro.bench.harness import ExperimentResult, percentile
from repro.bench.workloads import (SMALL, Scale, base_config, sssp_bundle)
from repro.core import Application, TornadoJob
from repro.datagen import higgs_like
from repro.streams import UniformRate, instance_stream


def run_ablation_activation(scale: Scale = SMALL,
                            n_queries: int = 5) -> ExperimentResult:
    """Minimal (in-flight) vs full fork activation."""
    result = ExperimentResult(
        experiment="ablation-activation",
        title="Branch fork activation: minimal (in-flight) vs full",
        columns=["activation", "p99_latency_s", "mean_branch_updates"],
    )
    stats: dict[str, tuple[float, float]] = {}
    for label, full in (("minimal", False), ("full", True)):
        bundle = sssp_bundle(scale, report_interval=0.01)
        job = bundle.job
        job.feed(bundle.stream)
        step = len(bundle.stream) // (n_queries + 1)
        latencies, updates = [], []
        for index in range(1, n_queries + 1):
            job.run_until(lambda c=index * step:
                          job.ingester.tuples_ingested >= c)
            job.run_for(0.05)
            outcome = job.wait_for_query(job.query(full_activation=full))
            record = job.branch_record(outcome.query_id)
            latencies.append(outcome.latency)
            updates.append(job.loop_totals(record.loop)["commits"])
        stats[label] = (percentile(latencies), float(np.mean(updates)))
        result.add_row(activation=label, p99_latency_s=stats[label][0],
                       mean_branch_updates=stats[label][1])
    result.check(
        "minimal activation does far less branch work",
        stats["minimal"][1] < stats["full"][1] * 0.5,
        f"minimal={stats['minimal'][1]:.0f} full={stats['full'][1]:.0f}"
        " updates")
    result.check(
        "minimal activation is at least as fast",
        stats["minimal"][0] <= stats["full"][0] * 1.1,
        f"minimal={stats['minimal'][0]:.4f}s full={stats['full'][0]:.4f}s")
    return result


def run_ablation_sampling(scale: Scale = SMALL,
                          duration: float = 2.5) -> ExperimentResult:
    """Reservoir vs recency-biased sampling under SGD (paper §3.2)."""
    result = ExperimentResult(
        experiment="ablation-sampling",
        title="SGD sampling: reservoir (uniform) vs recency-biased",
        columns=["sampler", "full_data_objective"],
    )
    instances, _w = higgs_like(scale.n_instances, dim=scale.dim,
                               seed=scale.seed + 3, noise=0.1, drift=1.2)
    xs = np.stack([inst.x() for inst in instances])
    ys = np.asarray([inst.label for inst in instances], dtype=float)
    loss = HingeLoss(l2=1e-3)
    objectives: dict[str, float] = {}
    for label, use_reservoir in (("reservoir", True), ("recency", False)):
        program = SGDProgram(loss, scale.dim, 4,
                             lambda: StaticRate(0.1), batch_size=16,
                             reservoir_capacity=64, input_batch=8,
                             tolerance=3e-3, use_reservoir=use_reservoir)
        app = Application(program, InstanceRouter(4), name="ablation")
        job = TornadoJob(app, base_config(report_interval=0.01))
        job.feed(instance_stream(instances,
                                 UniformRate(scale.stream_rate)))
        job.run_for(duration)
        outcome = job.query_and_wait()
        weights = outcome.values[PARAM].weights
        objectives[label] = loss.objective(weights, xs, ys)
        result.add_row(sampler=label,
                       full_data_objective=objectives[label])
    result.check(
        "uniform sampling fits the whole stream better",
        objectives["reservoir"] <= objectives["recency"] * 1.05,
        f"reservoir={objectives['reservoir']:.4f} "
        f"recency={objectives['recency']:.4f}")
    return result


def run_ablation_storage(scale: Scale = SMALL,
                         n_queries: int = 4) -> ExperimentResult:
    """Disk vs in-memory storage backend under identical workloads."""
    result = ExperimentResult(
        experiment="ablation-storage",
        title="Storage backend: disk vs memory flush costs",
        columns=["backend", "p99_latency_s"],
    )
    latencies: dict[str, float] = {}
    for backend in ("disk", "memory"):
        bundle = sssp_bundle(scale, storage_backend=backend,
                             report_interval=0.01)
        job = bundle.job
        job.feed(bundle.stream)
        step = len(bundle.stream) // (n_queries + 1)
        per_query = []
        for index in range(1, n_queries + 1):
            job.run_until(lambda c=index * step:
                          job.ingester.tuples_ingested >= c)
            job.run_for(0.05)
            per_query.append(job.query_and_wait().latency)
        latencies[backend] = percentile(per_query)
        result.add_row(backend=backend, p99_latency_s=latencies[backend])
    result.check(
        "disk-backed flushes cost more than memory",
        latencies["disk"] > latencies["memory"],
        f"disk={latencies['disk']:.4f}s memory={latencies['memory']:.4f}s")
    return result
