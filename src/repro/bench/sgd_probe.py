"""Probing utilities for the SGD experiments (Figures 6 and 7).

The paper plots *approximation error* of the main loop over time: how far
the main loop's model is from the optimum for the inputs seen so far.  The
probe pauses the simulation every ``dt`` virtual seconds, reads the param
vertex, and compares its objective on the ingested prefix against the
prefix's optimum (computed by a warm-started batch solver).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.sgd import PARAM, Loss
from repro.baselines.solvers import GradientDescentSolver
from repro.bench.workloads import WorkloadBundle


@dataclass
class ProbeSample:
    time: float
    error: float
    objective: float
    rate: float
    ingested: int


def probe_main_loop(bundle: WorkloadBundle, loss: Loss, dim: int,
                    duration: float, dt: float = 0.25,
                    solver_rate: float = 0.3) -> list[ProbeSample]:
    """Run the bundle's job for ``duration`` virtual seconds, sampling the
    main loop's approximation error every ``dt``."""
    job = bundle.job
    instances = bundle.extras["instances"]
    job.feed(bundle.stream)
    solver = GradientDescentSolver(loss, dim, rate=solver_rate,
                                   tolerance=1e-4)
    optimum_w: np.ndarray | None = None
    solved_upto = 0
    samples: list[ProbeSample] = []
    steps = int(round(duration / dt))
    for _ in range(steps):
        job.run_for(dt)
        ingested = min(job.ingester.tuples_ingested, len(instances))
        if ingested < 2:
            continue
        prefix = instances[:ingested]
        xs = np.stack([inst.x() for inst in prefix])
        ys = np.asarray([inst.label for inst in prefix], dtype=float)
        if ingested > solved_upto:
            solver.instances = list(prefix)
            optimum_w, _stats = solver.solve(initial=optimum_w)
            solved_upto = ingested
        param = job.main_values().get(PARAM)
        if param is None or optimum_w is None:
            continue
        objective = loss.objective(param.weights, xs, ys)
        optimum = loss.objective(optimum_w, xs, ys)
        samples.append(ProbeSample(
            time=job.sim.now,
            error=max(objective - optimum, 0.0),
            objective=objective,
            rate=float(param.schedule.rate),
            ingested=ingested,
        ))
    return samples


def steady_state_error(samples: list[ProbeSample],
                       tail_fraction: float = 0.5) -> float:
    """Mean error over the trailing part of a probe series."""
    if not samples:
        return float("inf")
    start = int(len(samples) * (1.0 - tail_fraction))
    tail = samples[start:]
    return float(np.mean([s.error for s in tail]))
