"""Columnar-wire benchmarks: typed column runs vs per-row scatter
messages, A/B-ed across ``TornadoConfig.columnar_wire``.

The gate changes only the *representation* of a flushed session window —
same-``(loop, destination)`` packable scatters leave as parallel column
tuples inside a :class:`~repro.core.messages.ColumnBatch` instead of one
``VertexUpdate`` object per row — so every scenario here pairs a wall-
clock ratio with a byte-identity oracle: the pack may never change any
observable result, it may only get there faster.

Scenarios:

* ``protocol_leg`` — the dense-scatter protocol leg in isolation: a
  quiesced single-processor SSSP job receives the *same* pre-built
  N-row envelope over and over, once as a ``SessionBatch`` of
  ``VertexUpdate`` objects (the scalar unpack loop) and once as a
  ``ColumnBatch`` (the row fast path).  Offers are deliberately
  non-improving, so ``gather`` never dirties a vertex and no PREPARE
  round fires — the timing is the pure message leg the pack targets.
  This is where the committed ≥2x floor lives.
* ``dense_sim`` — end-to-end: zero-tolerance PageRank on a layered
  dense DAG (the densest scatter the router can produce), gate off vs
  on, run to quiescence on the DES backend.  The final ranks must be
  byte-identical; the wall ratio is recorded without a floor (end-to-end
  time includes gather compute the pack cannot touch).
* ``live_wall`` — the multiprocessing backend: the same SSSP stream on
  2 workers, gate off vs on, end-to-end wall clock.  Both runs must
  produce the same canonical final-state digest and the gate-on run
  must actually pack (``job.wire_rows() > 0``).
* ``digest_parity`` — the determinism oracle on the DES backend: with
  tracing on and a fixed seed, the flight-recorder digest (every event,
  in order, with virtual-time costs) must be byte-identical gate off vs
  on — in a steady run *and* under a kill/recover chaos schedule (a
  mid-window owner flip exercises the scalar fallback rows).

::

    python -m repro.bench wire [--quick]     # merges the "wire" section
                                             # into BENCH_perf.json
    python -m repro.bench wire --quick --check-baseline   # CI: validate
                                             # the committed section
"""

from __future__ import annotations

import hashlib
import json
import math
import platform
import sys
import time
from typing import Any

from repro.algorithms import PageRankProgram
from repro.algorithms.graph_common import EdgeStreamRouter
from repro.algorithms.sssp import SSSPProgram
from repro.bench.harness import ExperimentResult, merge_bench_json
from repro.core import Application, TornadoConfig, TornadoJob
from repro.core.messages import (MAIN_LOOP, ColumnBatch, SessionBatch,
                                 VertexUpdate)
from repro.live import canonical_digest
from repro.streams import UniformRate, edge_stream

#: protocol_leg sizes: rows per envelope and timed dispatch repeats.
LEG_ROWS = 256
QUICK_REPEATS, FULL_REPEATS = 40, 200
#: Chain length of the pre-seeded graph the envelopes land on.
LEG_CHAIN = 48
#: A non-improving offer: far above every converged chain distance, so
#: gather never dirties a vertex and the timing stays on the message leg.
LEG_OFFER = 1e6
#: dense_sim layered-DAG sizes (layer width, #layers) and stream rate.
QUICK_DAG, FULL_DAG = (10, 4), (16, 7)
DENSE_RATE = 1e5
#: live_wall graph sizes and worker count.
QUICK_LIVE, FULL_LIVE = (120, 500), (300, 1500)
LIVE_WORKERS = 2
#: Committed full-size floor for the protocol leg, and the loose CI
#: smoke floor (shared runners are noisy; the full floor is what the
#: --check-baseline job holds the committed numbers to).
PROTOCOL_FLOOR, QUICK_PROTOCOL_FLOOR = 2.0, 1.3
#: Fixed weighted graph for the traced parity pair (same shape as the
#: delta-path determinism suite: a reachable core plus shortcuts).
PARITY_EDGES = [
    ("s", "a", 1.0), ("s", "b", 4.0), ("a", "c", 2.0), ("b", "c", 1.0),
    ("c", "d", 3.0), ("d", "e", 1.0), ("b", "e", 9.0), ("e", "f", 2.0),
    ("f", "g", 1.0), ("d", "g", 7.0), ("a", "h", 5.0), ("h", "d", 1.0),
]


def _digest(items: dict[Any, float]) -> str:
    payload = repr(sorted((str(key), value)
                          for key, value in items.items()))
    return hashlib.sha256(payload.encode()).hexdigest()


def _distances(job: TornadoJob) -> dict[Any, float]:
    return {vertex: value.distance
            for vertex, value in job.main_values().items()
            if not math.isinf(value.distance)}


# ----------------------------------------------------------- protocol leg
def _chain_edges(length: int) -> list[tuple[str, str, float]]:
    return [(f"v{i}", f"v{i + 1}", 1.0) for i in range(length)]


def _seeded_leg_job(columnar_wire: bool) -> TornadoJob:
    """One single-processor SSSP job run to quiescence: every chain
    vertex holds a finite distance, so the bench envelopes below gather
    without changing anything."""
    app = Application(SSSPProgram("v0"), EdgeStreamRouter(), name="sssp")
    job = TornadoJob(app, TornadoConfig(
        n_processors=1, report_interval=0.02, storage_backend="memory",
        delta_path=True, columnar_wire=columnar_wire, seed=11))
    stream = edge_stream(_chain_edges(LEG_CHAIN), UniformRate(rate=1e5))
    job.feed(stream)
    total = len(stream)
    job.run_until(lambda: job.ingester.tuples_ingested >= total)
    job.run_until(lambda: job.quiescent(), max_events=100_000_000)
    return job


def _leg_rows(job: TornadoJob, n_rows: int) -> list[tuple]:
    """N packable rows aimed at vertices the (sole) processor owns.
    Producers are fresh ids, so the rows are never stale; iteration 0
    sits far under the delay bound; the offer never improves a
    distance."""
    proc = job.processors[0]
    consumers = sorted(proc.loops[MAIN_LOOP].vertices, key=str)
    return [(f"bench-{i}", consumers[i % len(consumers)], 0, LEG_OFFER)
            for i in range(n_rows)]


def _time_dispatch(proc: Any, batch: Any, repeats: int) -> float:
    proc._dispatch(batch)                     # warm-up (slot creation)
    started = time.perf_counter()
    for _ in range(repeats):
        proc._dispatch(batch)
    return time.perf_counter() - started


def protocol_leg_section(repeats: int) -> dict[str, Any]:
    """Time the same rows through both unpack paths on twin jobs, then
    hold the paths to identical observable state."""
    scalar_job = _seeded_leg_job(columnar_wire=False)
    column_job = _seeded_leg_job(columnar_wire=True)
    rows = _leg_rows(scalar_job, LEG_ROWS)
    assert rows == _leg_rows(column_job, LEG_ROWS)
    scalar_batch = SessionBatch(
        MAIN_LOOP, tuple(VertexUpdate(MAIN_LOOP, *row) for row in rows))
    column_batch = ColumnBatch(MAIN_LOOP, (tuple(zip(*rows)),))
    scalar_wall = _time_dispatch(scalar_job.processors[0], scalar_batch,
                                 repeats)
    column_wall = _time_dispatch(column_job.processors[0], column_batch,
                                 repeats)
    events = LEG_ROWS * repeats
    scalar_eps = events / scalar_wall if scalar_wall > 0 else 0.0
    column_eps = events / column_wall if column_wall > 0 else 0.0
    scalar_loop = scalar_job.processors[0].loops[MAIN_LOOP]
    column_loop = column_job.processors[0].loops[MAIN_LOOP]
    state_match = (
        _digest(_distances(scalar_job)) == _digest(_distances(column_job))
        and scalar_loop.gathered_total == column_loop.gathered_total)
    fast_rows = column_job.metrics.counter("core.wire_row_gathers").value
    return {
        "rows": LEG_ROWS, "repeats": repeats, "events": events,
        "scalar": {"wall_s": scalar_wall, "rows_per_s": scalar_eps},
        "column": {"wall_s": column_wall, "rows_per_s": column_eps},
        "speedup": column_eps / scalar_eps if scalar_eps else 0.0,
        "state_match": state_match,
        "fast_rows": int(fast_rows),
    }


# -------------------------------------------------------------- dense sim
def _layered_dag(width: int, layers: int) -> list[tuple[int, int, float]]:
    edges = []
    for layer in range(layers - 1):
        base, nxt = layer * width, (layer + 1) * width
        for u in range(width):
            for v in range(width):
                edges.append((base + u, nxt + v, 1.0))
    return edges


def _dense_sim_run(wire: bool, size: tuple[int, int]) -> dict[str, Any]:
    width, layers = size
    stream = edge_stream(_layered_dag(width, layers),
                         UniformRate(DENSE_RATE))
    app = Application(PageRankProgram(tolerance=0.0), EdgeStreamRouter(),
                      name="pagerank")
    job = TornadoJob(app, TornadoConfig(
        n_processors=4, report_interval=0.02, storage_backend="memory",
        delta_path=True, columnar_wire=wire, seed=11))
    started = time.perf_counter()
    job.feed(stream)
    total = len(stream)
    job.run_until(lambda: job.ingester.tuples_ingested >= total)
    job.run_until(lambda: job.quiescent(), max_events=100_000_000)
    wall = time.perf_counter() - started
    ranks = {vertex: value.rank
             for vertex, value in job.main_values().items()}
    snapshot = job.metrics.snapshot()
    return {"tuples": total, "wall_s": wall,
            "tuples_per_s": total / wall if wall > 0 else 0.0,
            "digest": _digest(ranks),
            "packed_rows": int(snapshot.get("core.wire_packed_rows", 0)),
            "fallback_rows": int(snapshot.get("core.wire_fallback", 0))}


def dense_sim_section(size: tuple[int, int],
                      repeats: int) -> dict[str, Any]:
    off_runs = [_dense_sim_run(False, size) for _ in range(repeats)]
    on_runs = [_dense_sim_run(True, size) for _ in range(repeats)]
    off = max(off_runs, key=lambda run: run["tuples_per_s"])
    on = max(on_runs, key=lambda run: run["tuples_per_s"])
    digest_match = len({run["digest"]
                        for run in off_runs + on_runs}) == 1
    return {
        "dag": {"width": size[0], "layers": size[1]},
        "off": {k: off[k] for k in ("tuples", "wall_s", "tuples_per_s")},
        "on": {k: on[k] for k in ("tuples", "wall_s", "tuples_per_s")},
        "speedup": (on["tuples_per_s"] / off["tuples_per_s"]
                    if off["tuples_per_s"] else 0.0),
        "digest": off["digest"], "digest_match": digest_match,
        "packed_rows": on["packed_rows"],
        "fallback_rows": on["fallback_rows"],
    }


# -------------------------------------------------------------- live wall
def _live_run(edges: list, wire: bool, timeout: float) -> dict[str, Any]:
    stream = edge_stream(edges, UniformRate(rate=1e9))
    app = Application(SSSPProgram(0, max_distance=len(edges) * 2.0),
                      EdgeStreamRouter(), name="sssp")
    started = time.perf_counter()
    job = TornadoJob(app, TornadoConfig(
        backend="live", n_processors=LIVE_WORKERS, report_interval=0.02,
        storage_backend="memory", delta_path=True, columnar_wire=wire,
        seed=7))
    try:
        job.feed(stream)
        job.run_until_converged(timeout=timeout)
        job.finalize(timeout=30.0)
        wall = time.perf_counter() - started
        # Final-state digest only: protocol counts vary run to run on a
        # multi-producer live graph by construction (see live/oracle.py).
        digest = canonical_digest(job, include_counts=False)
        wire_rows = job.wire_rows()
    finally:
        job.shutdown()
    return {"tuples": len(stream), "wall_s": wall,
            "tuples_per_s": len(stream) / wall if wall > 0 else 0.0,
            "digest": digest, "wire_rows": wire_rows}


def live_wall_section(size: tuple[int, int], repeats: int,
                      timeout: float) -> dict[str, Any]:
    from repro.datagen import livejournal_like

    edges = livejournal_like(*size, seed=7)
    off_runs = [_live_run(edges, False, timeout) for _ in range(repeats)]
    on_runs = [_live_run(edges, True, timeout) for _ in range(repeats)]
    off = max(off_runs, key=lambda run: run["tuples_per_s"])
    on = max(on_runs, key=lambda run: run["tuples_per_s"])
    return {
        "graph": {"n_vertices": size[0], "n_edges": size[1]},
        "workers": LIVE_WORKERS,
        "off": {k: off[k] for k in ("tuples", "wall_s", "tuples_per_s")},
        "on": {k: on[k] for k in ("tuples", "wall_s", "tuples_per_s")},
        "speedup": (on["tuples_per_s"] / off["tuples_per_s"]
                    if off["tuples_per_s"] else 0.0),
        "digest": off["digest"],
        "digest_match": len({run["digest"]
                             for run in off_runs + on_runs}) == 1,
        "wire_rows": on["wire_rows"],
        "off_wire_rows": off["wire_rows"],
    }


# ----------------------------------------------------------- digest parity
def _traced_digests(wire: bool, chaos: bool) -> tuple[str, str]:
    app = Application(SSSPProgram("s"), EdgeStreamRouter(), name="sssp")
    job = TornadoJob(app, TornadoConfig(
        n_processors=3, report_interval=0.01, retransmit_timeout=0.1,
        storage_backend="memory", delta_path=True, columnar_wire=wire,
        trace_enabled=True, seed=5))
    job.feed(edge_stream(PARITY_EDGES, UniformRate(rate=1000.0)))
    if chaos:
        job.failures.kill_at(0.08, "proc-1", recover_after=0.3)
    job.run_for(4.0)
    return job.trace.digest(), _digest(_distances(job))


def digest_parity_section() -> dict[str, Any]:
    report: dict[str, Any] = {}
    for name, chaos in (("steady", False), ("chaos", True)):
        off_trace, off_values = _traced_digests(False, chaos)
        on_trace, on_values = _traced_digests(True, chaos)
        report[name] = {
            "off": off_trace, "on": on_trace,
            "identical": (off_trace == on_trace
                          and off_values == on_values),
        }
    return report


# ------------------------------------------------------------------ runner
def run_wire(quick: bool = False,
             json_path: str | None = "BENCH_perf.json",
             check_baseline: bool = False,
             *, live_timeout: float = 120.0) -> ExperimentResult:
    """Run all four scenarios, merge the ``"wire"`` section into
    ``json_path`` and return the usual experiment report.
    ``check_baseline`` (CI) instead validates the *committed* full-size
    section against the floors, so a regression in the committed numbers
    fails the smoke job even though the job itself runs ``--quick``."""
    repeats = 1 if quick else 3
    leg_repeats = QUICK_REPEATS if quick else FULL_REPEATS
    leg = protocol_leg_section(leg_repeats)
    dense = dense_sim_section(QUICK_DAG if quick else FULL_DAG, repeats)
    live = live_wall_section(QUICK_LIVE if quick else FULL_LIVE, repeats,
                             live_timeout)
    parity = digest_parity_section()

    result = ExperimentResult(
        experiment="wire",
        title="Columnar wire: column runs vs per-row scatter messages",
        columns=["scenario", "events", "off_eps", "on_eps", "speedup"],
        notes=("protocol_leg isolates the message leg (non-improving "
               "offers, no prepare rounds); dense_sim and live_wall are "
               "end to end; every scenario also holds a byte-identity "
               "oracle (gate on may never change a result)"),
    )
    result.add_row(scenario="protocol_leg", events=leg["events"],
                   off_eps=leg["scalar"]["rows_per_s"],
                   on_eps=leg["column"]["rows_per_s"],
                   speedup=leg["speedup"])
    result.add_row(scenario="dense_sim", events=dense["on"]["tuples"],
                   off_eps=dense["off"]["tuples_per_s"],
                   on_eps=dense["on"]["tuples_per_s"],
                   speedup=dense["speedup"])
    result.add_row(scenario="live_wall", events=live["on"]["tuples"],
                   off_eps=live["off"]["tuples_per_s"],
                   on_eps=live["on"]["tuples_per_s"],
                   speedup=live["speedup"])

    floor = QUICK_PROTOCOL_FLOOR if quick else PROTOCOL_FLOOR
    result.check(f"protocol leg ≥{floor}x on the column fast path",
                 leg["speedup"] >= floor,
                 f"speedup={leg['speedup']:.2f}x over {leg['events']} "
                 "rows")
    result.check("protocol leg leaves byte-identical state either path",
                 leg["state_match"])
    result.check("column fast path actually engaged",
                 leg["fast_rows"] >= leg["events"])
    result.check("dense sim: byte-identical ranks, gate on vs off",
                 dense["digest_match"], dense["digest"][:12] + "…")
    result.check("dense sim: the wire packs under the gate",
                 dense["packed_rows"] > 0,
                 f"{dense['packed_rows']} rows packed, "
                 f"{dense['fallback_rows']} fallback")
    result.check("live: identical canonical digests, gate on vs off",
                 live["digest_match"], live["digest"][:12] + "…")
    result.check("live: the wire packs under the gate (and only then)",
                 live["wire_rows"] > 0 and live["off_wire_rows"] == 0,
                 f"{live['wire_rows']} rows on, "
                 f"{live['off_wire_rows']} off")
    if not quick:
        result.check("live 2-worker wall clock improves under the gate",
                     live["speedup"] > 1.0,
                     f"speedup={live['speedup']:.2f}x")
    result.check("flight-recorder digests byte-identical (steady)",
                 parity["steady"]["identical"],
                 parity["steady"]["off"][:12] + "…")
    result.check("flight-recorder digests byte-identical (kill/recover)",
                 parity["chaos"]["identical"],
                 parity["chaos"]["off"][:12] + "…")

    report = {
        "bench": "columnar_wire",
        "version": 1,
        "quick": quick,
        "python": platform.python_version(),
        "protocol_leg": leg,
        "dense_sim": dense,
        "live": live,
        "digest_parity": parity,
    }
    result.extras["report"] = report

    if check_baseline:
        try:
            with open(json_path or "BENCH_perf.json",
                      encoding="utf-8") as handle:
                committed = json.load(handle).get("wire", {})
        except (OSError, json.JSONDecodeError):
            committed = {}
        committed_leg = committed.get("protocol_leg", {}).get("speedup",
                                                              0.0)
        committed_live = committed.get("live", {}).get("speedup", 0.0)
        parity_ok = all(
            committed.get("digest_parity", {}).get(k, {}).get("identical")
            for k in ("steady", "chaos"))
        committed_ok = (not committed.get("quick", True)
                        and committed_leg >= PROTOCOL_FLOOR
                        and committed_live > 1.0
                        and parity_ok)
        result.check(
            f"committed full-size baseline: protocol leg "
            f"≥{PROTOCOL_FLOOR}x, live improves, parity holds",
            committed_ok,
            f"committed leg={committed_leg}x live={committed_live}x")
    elif json_path is not None:
        merge_bench_json(json_path, {"wire": report})
    return result


def main(argv: list[str]) -> int:
    result = run_wire(quick="--quick" in argv,
                      check_baseline="--check-baseline" in argv)
    print(result.report())
    return 0 if result.all_checks_pass else 1


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main(sys.argv[1:]))
