"""Multi-tenant JobManager benchmark: zipf traffic on a shared pool.

N tenants with zipf-distributed traffic (tenant at rank r carries a
``1/r^s`` share of the tuple budget) run concurrently under one
:class:`~repro.core.JobManager`, mixing SSSP / PageRank / reachability
programs, with WRR weights proportional to each tenant's traffic share.
Each tenant then runs again *solo* on its own cluster and the wall
clocks are compared — the manager executes the exact same virtual work,
so the ratio is the scheduler's multiplexing overhead.

Two shape checks gate the numbers on the isolation oracle: every
tenant's flight-recorder digest and final vertex state under the shared
manager must be byte-identical to its solo run.  A benchmark that went
fast by leaking events between tenants would fail here, not look good::

    python -m repro.bench tenants [--quick]   # merges the "tenants"
                                              # section into
                                              # BENCH_perf.json
"""

from __future__ import annotations

import platform
import sys
import time

from repro.algorithms.graph_common import EdgeStreamRouter
from repro.algorithms.pagerank import PageRankProgram
from repro.algorithms.sssp import SSSPProgram
from repro.bench.harness import ExperimentResult, merge_bench_json
from repro.core import (Application, JobManager, TenantQuota, TenantSpec,
                        TornadoConfig, reachability, run_solo)
from repro.datagen import livejournal_like
from repro.streams import UniformRate, edge_stream

QUICK_TENANTS = 3
FULL_TENANTS = 6
QUICK_TUPLES = 450
FULL_TUPLES = 3000
ZIPF_S = 1.0
RATE = 1000.0
SOURCE = 0


def _sssp_app() -> Application:
    return Application(SSSPProgram(SOURCE), EdgeStreamRouter(),
                       name="sssp")


def _pagerank_app() -> Application:
    return Application(PageRankProgram(tolerance=1e-4),
                       EdgeStreamRouter(), name="pagerank")


def _reach_app() -> Application:
    return Application(reachability(SOURCE), EdgeStreamRouter(),
                       name="reach")


APPS = (("sssp", _sssp_app), ("pagerank", _pagerank_app),
        ("reachability", _reach_app))


def zipf_shares(n: int, s: float = ZIPF_S) -> list[float]:
    """Normalized zipf(s) shares for ranks 1..n."""
    raw = [1.0 / (rank ** s) for rank in range(1, n + 1)]
    total = sum(raw)
    return [value / total for value in raw]


def make_tenant_specs(n_tenants: int, total_tuples: int,
                      s: float = ZIPF_S) -> list[TenantSpec]:
    """One spec per zipf rank: rank 1 carries the biggest traffic share
    and the biggest WRR weight; programs cycle through the mix."""
    shares = zipf_shares(n_tenants, s)
    specs = []
    for rank, share in enumerate(shares, start=1):
        app_name, app_factory = APPS[(rank - 1) % len(APPS)]
        n_edges = max(30, round(total_tuples * share))
        edges = livejournal_like(max(16, n_edges // 4), n_edges,
                                 seed=100 + rank)
        feeds = tuple(edge_stream(edges, UniformRate(rate=RATE)))
        feed_end = len(feeds) / RATE
        weight = max(1, round(3 * share / shares[0]))
        specs.append(TenantSpec(
            tenant=f"rank{rank}-{app_name}",
            app_factory=app_factory,
            config=TornadoConfig(seed=rank, n_processors=2,
                                 report_interval=0.01,
                                 storage_backend="memory",
                                 trace_enabled=True,
                                 trace_capacity=400_000),
            quota=TenantQuota(weight=weight, max_processors=2),
            feeds=feeds,
            query_times=((feed_end + 0.3, True),),
            horizon=feed_end + 1.5,
        ))
    return specs


def run_tenants(quick: bool = False,
                json_path: str | None = "BENCH_perf.json",
                *, n_tenants: int | None = None,
                total_tuples: int | None = None) -> ExperimentResult:
    """Run the zipf multi-tenant bench, merge the ``"tenants"`` section
    into ``json_path`` and return the usual experiment report."""
    n = n_tenants or (QUICK_TENANTS if quick else FULL_TENANTS)
    tuples = total_tuples or (QUICK_TUPLES if quick else FULL_TUPLES)
    specs = make_tenant_specs(n, tuples)

    manager = JobManager(pool_size=2 * n, window=0.25)
    started = time.perf_counter()
    for spec in specs:
        manager.submit(spec)
    rounds = manager.run_until_all_done()
    manager_wall = time.perf_counter() - started

    digests = manager.digests()
    solo_wall = 0.0
    isolation = {"digests": True, "values": True}
    runs = []
    for spec in specs:
        record = manager.tenants[spec.tenant]
        solo_started = time.perf_counter()
        solo = run_solo(spec)
        tenant_solo_wall = time.perf_counter() - solo_started
        solo_wall += tenant_solo_wall
        if digests[spec.tenant] != solo.trace.digest():
            isolation["digests"] = False
        if manager.final_values(spec.tenant) != solo.main_values():
            isolation["values"] = False
        runs.append({
            "tenant": spec.tenant,
            "tuples": len(spec.feeds),
            "weight": spec.quota.weight,
            "windows": record.windows,
            "truncated": record.truncated,
            "state": record.state,
            "solo_wall_s": tenant_solo_wall,
            "digest": digests[spec.tenant][:16],
        })

    overhead = manager_wall / solo_wall if solo_wall > 0 else 0.0
    result = ExperimentResult(
        experiment="tenants",
        title=f"Multi-tenant JobManager: {n} zipf tenants, shared pool",
        columns=["tenant", "tuples", "weight", "windows", "truncated",
                 "solo_wall_s"],
        notes=(f"zipf s={ZIPF_S}, {tuples} total tuples, WRR window "
               f"0.25s, pool {2 * n} slots; manager wall "
               f"{manager_wall:.2f}s over {rounds} rounds vs "
               f"{solo_wall:.2f}s serial solo (x{overhead:.2f}); "
               "digests gated by the isolation oracle"),
    )
    for run in runs:
        result.add_row(tenant=run["tenant"], tuples=run["tuples"],
                       weight=run["weight"], windows=run["windows"],
                       truncated=run["truncated"],
                       solo_wall_s=run["solo_wall_s"])
    result.check("all tenants complete",
                 set(manager.states().values()) == {"done"},
                 str(manager.states()))
    result.check("digests match solo runs (isolation oracle)",
                 isolation["digests"], f"{n} tenants compared")
    result.check("final states match solo runs",
                 isolation["values"], f"{n} tenants compared")

    report = {
        "bench": "multi_tenant",
        "version": 1,
        "quick": quick,
        "python": platform.python_version(),
        "zipf_s": ZIPF_S,
        "n_tenants": n,
        "total_tuples": tuples,
        "pool_size": 2 * n,
        "window": 0.25,
        "rounds": rounds,
        "manager_wall_s": manager_wall,
        "solo_wall_s": solo_wall,
        "overhead_ratio": overhead,
        "isolation": isolation,
        "runs": runs,
    }
    result.extras["report"] = report
    if json_path is not None:
        merge_bench_json(json_path, {"tenants": report})
    return result


def main(argv: list[str]) -> int:
    result = run_tenants(quick="--quick" in argv)
    print(result.report())
    return 0 if result.all_checks_pass else 1


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main(sys.argv[1:]))
