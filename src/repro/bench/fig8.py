"""Figure 8b-d: asynchronism under stragglers and failures.

8b — LR objective over time per delay bound with a straggler processor:
the synchronous loop waits for the slowest worker every iteration, while
the loop with the largest bound keeps updating the model.

8c — master failure: updates/second over time.  The synchronous loop
stalls as soon as termination notices stop; a bounded loop (B=256) runs on
until every update hits the delay frontier; the B=65536 loop finishes
unaffected because it never reaches the bound.  All resume after recovery.

8d — single-processor failure: every loop eventually stalls as the failed
processor's silence propagates through the dependency graph, and resumes
after recovery.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import StaticRate
from repro.algorithms.sgd import PARAM, HingeLoss
from repro.bench.harness import ExperimentResult
from repro.bench.workloads import SMALL, Scale, sssp_bundle, svm_bundle
from repro.core import TornadoJob
from repro.obs import phase_counts, render_phase_table

DELAY_BOUNDS = (1, 256, 65536)


def _commit_rate_series(job: TornadoJob, duration: float,
                        dt: float) -> list[tuple[float, float]]:
    """Sample (time, commits per second) every ``dt``."""
    series = []
    previous = job.total_commits
    steps = int(round(duration / dt))
    for _ in range(steps):
        job.run_for(dt)
        current = job.total_commits
        series.append((job.sim.now, (current - previous) / dt))
        previous = current
    return series


def run_fig8b(scale: Scale = SMALL,
              delay_bounds: tuple[int, ...] = DELAY_BOUNDS,
              duration: float = 3.0, dt: float = 0.25,
              straggler_factor: float = 8.0) -> ExperimentResult:
    """LR/SVM objective vs time per delay bound, with one straggler."""
    loss = HingeLoss(l2=1e-3)
    result = ExperimentResult(
        experiment="fig8b",
        title="SGD objective under stragglers per delay bound",
        columns=["delay_bound", "time_s", "objective"],
    )
    final: dict[int, float] = {}
    for bound in delay_bounds:
        bundle = svm_bundle(scale, batch_size=32, delay_bound=bound,
                            schedule_factory=lambda: StaticRate(0.1),
                            report_interval=0.01)
        job = bundle.job
        job.processors[0].speed_factor = straggler_factor
        instances = bundle.extras["instances"]
        xs = np.stack([inst.x() for inst in instances])
        ys = np.asarray([inst.label for inst in instances], dtype=float)
        job.feed(bundle.stream)
        steps = int(round(duration / dt))
        objective = float("inf")
        for _ in range(steps):
            job.run_for(dt)
            param = job.main_values().get(PARAM)
            if param is None:
                continue
            objective = loss.objective(param.weights, xs, ys)
            result.add_row(delay_bound=bound,
                           time_s=round(job.sim.now, 3),
                           objective=objective)
        final[bound] = objective
    sync, widest = delay_bounds[0], delay_bounds[-1]
    result.check(
        "async loop reaches a lower objective under stragglers",
        final[widest] <= final[sync],
        f"final objectives: {[(b, round(final[b], 4)) for b in final]}")
    return result


def _failure_run(kind: str, bound: int, scale: Scale, dt: float,
                 fail_delay: float, recover_after: float,
                 horizon: float, trace: bool = False
                 ) -> tuple[list[tuple[float, float]], bool, TornadoJob]:
    """Run one SSSP *branch loop* (the paper's §6.3.2 setup: from the
    default guess, half the stream ingested), kill the master or a
    processor mid-run, and sample updates/second.  Returns the rate
    series (times relative to the fork), whether the branch converged
    within the horizon, and the finished job (whose flight recorder holds
    the run's trace when ``trace`` is set)."""
    bundle = sssp_bundle(scale, delay_bound=bound,
                         main_loop_mode="batch", merge_policy="never",
                         report_interval=0.01, trace_enabled=trace,
                         # Inflate per-update compute so the branch runs
                         # long enough for the outage to land mid-flight.
                         gather_cost=5e-3)
    job = bundle.job
    job.feed(bundle.stream)
    cutoff = len(bundle.stream) // 2
    job.run_until(lambda: job.ingester.tuples_ingested >= cutoff)
    query_id = job.query(full_activation=True)
    started = job.sim.now
    target = TornadoJob.MASTER if kind == "master" else "proc-1"
    job.failures.kill_at(started + fail_delay, target,
                         recover_after=recover_after)
    series: list[tuple[float, float]] = []
    previous = job.total_commits
    while job.sim.now < started + horizon:
        job.run_for(dt)
        current = job.total_commits
        series.append((job.sim.now - started, (current - previous) / dt))
        previous = current
        if job.ingester.query_done(query_id):
            break
    # Let any still-running branch finish within the remaining horizon.
    done = job.ingester.query_done(query_id)
    return series, done, job


def run_failure_figure(kind: str, scale: Scale = SMALL,
                       delay_bounds: tuple[int, ...] = DELAY_BOUNDS,
                       dt: float = 0.1, fail_delay: float = 0.3,
                       recover_after: float = 1.2,
                       horizon: float = 20.0,
                       trace: bool = False) -> ExperimentResult:
    """Shared driver for Figures 8c (master) and 8d (processor).

    With ``trace=True`` every run records into its flight recorder, and
    the per-iteration protocol-phase counts (updates/prepares/acks/
    commits) land in ``result.extras["phase_counts"]`` /
    ``result.extras["phase_tables"]`` — the recorder-side explanation of
    where each loop stalls during the outage.
    """
    assert kind in ("master", "processor")
    label = "master" if kind == "master" else "single processor"
    result = ExperimentResult(
        experiment="fig8c" if kind == "master" else "fig8d",
        title=f"Branch-loop updates per second across a {label} failure",
        columns=["delay_bound", "time_s", "updates_per_s"],
    )
    series: dict[int, list[tuple[float, float]]] = {}
    converged: dict[int, bool] = {}
    for bound in delay_bounds:
        samples, done, job = _failure_run(kind, bound, scale, dt,
                                          fail_delay, recover_after,
                                          horizon, trace=trace)
        series[bound] = samples
        converged[bound] = done
        if trace:
            result.extras.setdefault("phase_counts", {})[bound] = (
                phase_counts(job.trace))
            result.extras.setdefault("phase_tables", {})[bound] = (
                render_phase_table(job.trace))
            result.extras.setdefault("trace_digests", {})[bound] = (
                job.trace.digest())
        for at, rate in samples:
            result.add_row(delay_bound=bound, time_s=round(at, 3),
                           updates_per_s=rate)

    def rate_during_outage(bound: int) -> float:
        window = [rate for at, rate in series[bound]
                  if fail_delay + 2 * dt < at
                  <= fail_delay + recover_after]
        return float(np.mean(window)) if window else 0.0

    sync, widest = delay_bounds[0], delay_bounds[-1]
    if kind == "master":
        result.check(
            "synchronous loop stalls during the master outage",
            rate_during_outage(sync) < 1.0,
            f"B={sync} outage rate={rate_during_outage(sync):.1f}/s")
        result.check(
            "largest-bound loop keeps updating through the outage",
            rate_during_outage(widest) > max(1.0,
                                             rate_during_outage(sync)),
            f"B={widest} outage rate={rate_during_outage(widest):.1f}/s")
    else:
        result.check(
            "every loop slows during the processor outage",
            all(rate_during_outage(b) < max(
                (rate for at, rate in series[b] if at <= fail_delay),
                default=1.0)
                for b in delay_bounds),
            str({b: round(rate_during_outage(b), 1)
                 for b in delay_bounds}))
    result.check(
        "every branch converges despite the failure",
        all(converged.values()),
        str(converged))
    return result
