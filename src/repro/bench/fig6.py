"""Figure 6: approximation error vs adaptation rate (SVM).

6a — the main loop's approximation error over time for two static descent
rates: the large rate (0.5) adapts fast but settles at a *higher* error;
the small rate (0.1) reaches a lower steady-state error.

6b — running time of branch loops forked at several instants: branches
from the low-error (rate 0.1) main loop finish faster than from the 0.5
loop, and both beat the batch configuration, whose branches start from
stale epoch results.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import HingeLoss, StaticRate
from repro.bench.harness import ExperimentResult
from repro.bench.sgd_probe import probe_main_loop, steady_state_error
from repro.bench.workloads import SMALL, Scale, svm_bundle

LOSS = HingeLoss(l2=1e-3)


def run_fig6a(scale: Scale = SMALL, rates: tuple[float, ...] = (0.5, 0.1),
              duration: float = 4.0, dt: float = 0.25,
              drift: float = 0.6) -> ExperimentResult:
    """Main-loop approximation error over time per descent rate."""
    result = ExperimentResult(
        experiment="fig6a",
        title="SVM main-loop approximation error vs descent rate",
        columns=["rate", "time_s", "error"],
    )
    steady: dict[float, float] = {}
    for rate in rates:
        bundle = svm_bundle(scale, drift=drift,
                            schedule_factory=lambda r=rate: StaticRate(r))
        samples = probe_main_loop(bundle, LOSS, scale.dim, duration, dt)
        for sample in samples:
            result.add_row(rate=rate, time_s=round(sample.time, 3),
                           error=sample.error)
        steady[rate] = steady_state_error(samples)
    big, small = max(rates), min(rates)
    result.check(
        f"small rate ({small}) reaches lower steady error than {big}",
        steady[small] <= steady[big],
        f"steady errors: {small}->{steady[small]:.4g}, "
        f"{big}->{steady[big]:.4g}")
    result.notes = (f"steady-state errors: "
                    + ", ".join(f"rate {r}: {steady[r]:.4g}"
                                for r in rates))
    return result


def run_fig6b(scale: Scale = SMALL, rates: tuple[float, ...] = (0.5, 0.1),
              fork_times: tuple[float, ...] = (1.5, 2.5, 3.5),
              drift: float = 0.6) -> ExperimentResult:
    """Branch-loop running time when forked at several instants."""
    result = ExperimentResult(
        experiment="fig6b",
        title="SVM branch-loop running time vs fork instant",
        columns=["method", "fork_time_s", "branch_latency_s"],
    )
    mean_latency: dict[str, float] = {}
    configs: list[tuple[str, dict, float | None]] = [
        (f"rate={rate}", {}, rate) for rate in rates]
    configs.append(("batch", {"main_loop_mode": "batch",
                              "merge_policy": "always"}, min(rates)))
    for label, overrides, rate in configs:
        bundle = svm_bundle(
            scale, drift=drift,
            schedule_factory=lambda r=rate: StaticRate(r), **overrides)
        job = bundle.job
        job.feed(bundle.stream)
        latencies = []
        for fork_time in fork_times:
            job.run(until=fork_time)
            query = job.query_and_wait()
            latencies.append(query.latency)
            result.add_row(method=label, fork_time_s=fork_time,
                           branch_latency_s=query.latency)
        mean_latency[label] = float(np.mean(latencies))
    result.check(
        "low-rate branches beat high-rate branches",
        mean_latency[f"rate={min(rates)}"]
        <= mean_latency[f"rate={max(rates)}"] * 1.25,
        str({k: round(v, 4) for k, v in mean_latency.items()}))
    result.check(
        "batch branches are the slowest",
        mean_latency["batch"] >= max(
            mean_latency[f"rate={r}"] for r in rates),
        str({k: round(v, 4) for k, v in mean_latency.items()}))
    return result
