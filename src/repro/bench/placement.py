"""Resource-aware placement benchmark: end-to-end A/B on a constrained
fabric, plus the critical-path bottleneck oracle.

Two questions, both answered in *virtual* time (exact replay facts,
machine independent):

1. **Does submission-time packing pay end to end?**  The same SSSP
   stream runs twice on a heterogeneous two-node cluster whose fabric
   has a finite message capacity — the regime R-Storm targets, where
   inter-node traffic is the scarce resource.  ``round_robin`` is the
   paper's hash layout; ``resource_aware`` profiles the stream and packs
   connected vertices together (:mod:`repro.core.placement`).  The
   score is completion time: ingest the full stream, then run to
   quiescence.  Both runs must converge to identical vertex values
   (placement may only move work, never change results), and the
   resource-aware run must finish ≥1.3x faster at full size.

2. **Does the critical-path analyser find a planted bottleneck?**  A
   separate traced run plants a delay spike on one processor link; the
   SnailTrail extractor (:mod:`repro.obs.critical_path`) must rank that
   link first, twice, with byte-identical traces — the reproducibility
   oracle for the analysis itself.

::

    python -m repro.bench placement [--quick]   # merges the
                                                # "placement" section
                                                # into BENCH_perf.json
    python -m repro.bench.placement --check-baseline   # CI: validate the
                                                       # committed section
"""

from __future__ import annotations

import json
import platform
import sys
from typing import Any

from repro.bench.harness import ExperimentResult, merge_bench_json
from repro.bench.workloads import Scale, sssp_bundle
from repro.obs.critical_path import extract_critical_path

#: Full/quick workload sizes (virtual-time bench: quick only trims wall
#: clock, the ratios are comparable at either size).
FULL_SCALE = Scale(n_vertices=400, n_edges=2000, stream_rate=100_000.0)
QUICK_SCALE = Scale(n_vertices=200, n_edges=900, stream_rate=100_000.0)
#: Fabric capacity ceiling (messages per virtual second) — tight enough
#: that remote traffic, not compute, bounds completion.
NET_CAPACITY = 40_000.0
#: Heterogeneous cluster: even nodes twice as capacious as odd ones.
NODE_CAPACITY = (2.0, 1.0)
#: Acceptance floor for resource-aware over round-robin completion.
SPEEDUP_FLOOR = 1.3
QUICK_SPEEDUP_FLOOR = 1.1

#: Planted-bottleneck run: sizes, the slowed link and the spike.
BOTTLENECK_SCALE = Scale(n_vertices=120, n_edges=600,
                         stream_rate=100_000.0)
BOTTLENECK_LINK = ("proc-2", "proc-1")
BOTTLENECK_DELAY = 5e-3


def _run_mode(scale: Scale, placement: str) -> dict[str, Any]:
    """One end-to-end run; returns virtual completion time and traffic."""
    overrides: dict[str, Any] = dict(
        n_processors=4, n_nodes=2, net_capacity=NET_CAPACITY,
        gather_cost=1e-5, placement=placement)
    if placement == "resource_aware":
        overrides["placement_node_capacity"] = NODE_CAPACITY
    bundle = sssp_bundle(scale, **overrides)
    job = bundle.job
    job.feed(bundle.stream)
    total = len(bundle.stream)
    job.run_until(lambda: job.ingester.tuples_ingested >= total)
    job.run_until(job.quiescent, max_events=200_000_000)
    out: dict[str, Any] = {
        "placement": placement,
        "tuples": total,
        "completion_vs": job.sim.now,
        "remote_messages": job.network.stats.remote_sent,
        "total_messages": job.network.stats.sent,
        "values": job.main_values(),
    }
    plan = job.placement_plan
    if plan is not None:
        out["cut_cost"] = plan.cut_cost
        out["baseline_cut_cost"] = plan.baseline_cut_cost
        out["cut_improvement"] = plan.improvement
        out["assignments_digest"] = hash_assignments(plan.assignments)
    return out


def hash_assignments(assignments: dict[Any, str]) -> str:
    """Deterministic fingerprint of a placement plan."""
    import hashlib
    text = ";".join(f"{vertex}={proc}" for vertex, proc in
                    sorted(assignments.items(),
                           key=lambda kv: str(kv[0])))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _bottleneck_run() -> tuple[str, dict[str, float]]:
    """One traced run with the planted slow link; returns the trace
    digest and the extracted link criticality scores."""
    bundle = sssp_bundle(BOTTLENECK_SCALE, n_processors=4, n_nodes=4,
                         trace_enabled=True, trace_links=True,
                         trace_capacity=2_000_000)
    job = bundle.job
    src, dst = BOTTLENECK_LINK
    job.network.add_delay(BOTTLENECK_DELAY, src, dst)
    job.feed(bundle.stream)
    total = len(bundle.stream)
    job.run_until(lambda: job.ingester.tuples_ingested >= total)
    job.run_until(job.quiescent, max_events=200_000_000)
    report = extract_critical_path(job.trace)
    scores = {f"{a}->{b}": score
              for (a, b), score in report.link_scores().items()}
    return job.trace.digest(), scores


def run_placement(quick: bool = False,
                  json_path: str | None = "BENCH_perf.json",
                  *, scale: Scale | None = None,
                  check_baseline: bool = False) -> ExperimentResult:
    """Run the placement A/B and the bottleneck oracle, merge the
    ``"placement"`` section into ``json_path`` and return the experiment
    report.  ``check_baseline`` (CI) validates the *committed* full-size
    section instead of overwriting it."""
    scale = scale or (QUICK_SCALE if quick else FULL_SCALE)
    modes = {name: _run_mode(scale, name)
             for name in ("round_robin", "resource_aware")}
    rr, ra = modes["round_robin"], modes["resource_aware"]
    speedup = (rr["completion_vs"] / ra["completion_vs"]
               if ra["completion_vs"] > 0 else 0.0)
    values_match = rr.pop("values") == ra.pop("values")
    traffic_ratio = (rr["remote_messages"] / ra["remote_messages"]
                     if ra["remote_messages"] else 0.0)

    # Determinism: a second resource-aware run must produce the same plan.
    replay = _run_mode(scale, "resource_aware")
    replay.pop("values")
    plan_deterministic = (replay["assignments_digest"]
                          == ra["assignments_digest"]
                          and replay["completion_vs"]
                          == ra["completion_vs"])

    digest_a, scores_a = _bottleneck_run()
    digest_b, scores_b = _bottleneck_run()
    planted = f"{BOTTLENECK_LINK[0]}->{BOTTLENECK_LINK[1]}"
    ranked = sorted(scores_a, key=lambda link: (-scores_a[link], link))
    bottleneck_first = bool(ranked) and ranked[0] == planted
    bottleneck_reproducible = (digest_a == digest_b
                               and scores_a == scores_b)

    result = ExperimentResult(
        experiment="placement",
        title=(f"Resource-aware placement at {scale.n_vertices}v/"
               f"{scale.n_edges}e on a {NET_CAPACITY:.0f} msg/s fabric"),
        columns=["mode", "tuples", "completion_vs", "remote_msgs",
                 "cut_cost"],
        notes=(f"virtual-time completion (ingest + quiesce); node "
               f"capacity {NODE_CAPACITY} cycled over 2 nodes; "
               f"resource-aware/round-robin x{speedup:.2f}, remote "
               f"traffic x{traffic_ratio:.2f} lower; planted bottleneck "
               f"{planted} criticality "
               f"{scores_a.get(planted, 0.0):.1%}"),
    )
    for name in ("round_robin", "resource_aware"):
        mode = modes[name]
        result.add_row(mode=name, tuples=mode["tuples"],
                       completion_vs=mode["completion_vs"],
                       remote_msgs=mode["remote_messages"],
                       cut_cost=mode.get("cut_cost"))
    floor = QUICK_SPEEDUP_FLOOR if quick else SPEEDUP_FLOOR
    result.check(
        f"resource-aware ≥{floor}x round-robin end-to-end"
        + (" (smoke)" if quick else ""),
        speedup >= floor, f"speedup={speedup:.2f}x")
    result.check("identical converged values under both placements",
                 values_match)
    result.check("plan and completion deterministic across reruns",
                 plan_deterministic)
    result.check("planted bottleneck link ranked first",
                 bottleneck_first,
                 f"top={ranked[0] if ranked else None}")
    result.check("bottleneck ranking reproducible (byte-identical "
                 "traces)", bottleneck_reproducible,
                 f"digest={digest_a[:16]}…")

    report = {
        "bench": "resource_aware_placement",
        "version": 1,
        "quick": quick,
        "python": platform.python_version(),
        "n_vertices": scale.n_vertices,
        "n_edges": scale.n_edges,
        "net_capacity": NET_CAPACITY,
        "node_capacity": list(NODE_CAPACITY),
        "speedup": speedup,
        "traffic_ratio": traffic_ratio,
        "values_match": values_match,
        "plan_deterministic": plan_deterministic,
        "modes": {name: {k: v for k, v in mode.items()
                         if k != "values"}
                  for name, mode in modes.items()},
        "bottleneck": {
            "planted": planted,
            "delay_s": BOTTLENECK_DELAY,
            "first": bottleneck_first,
            "reproducible": bottleneck_reproducible,
            "scores": scores_a,
            "digest": digest_a,
        },
    }
    result.extras["report"] = report

    if check_baseline:
        try:
            with open(json_path or "BENCH_perf.json",
                      encoding="utf-8") as handle:
                committed = json.load(handle).get("placement", {})
        except (OSError, json.JSONDecodeError):
            committed = {}
        committed_speedup = committed.get("speedup", 0.0)
        committed_ok = (not committed.get("quick", True)
                        and committed_speedup >= SPEEDUP_FLOOR
                        and committed.get("bottleneck", {}).get("first"))
        result.check(
            f"committed full-size baseline meets the ≥{SPEEDUP_FLOOR}x "
            "floor with the bottleneck ranked first",
            committed_ok,
            f"committed speedup={committed_speedup}")
    elif json_path is not None:
        merge_bench_json(json_path, {"placement": report})
    return result


def main(argv: list[str]) -> int:
    result = run_placement(quick="--quick" in argv,
                           check_baseline="--check-baseline" in argv)
    print(result.report())
    return 0 if result.all_checks_pass else 1


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main(sys.argv[1:]))
