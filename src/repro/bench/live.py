"""Live-backend scaling benchmark: SSSP wall-clock across worker counts.

Unlike the DES experiments this one actually forks OS processes: the
same SSSP stream runs on ``backend="live"`` with 1, 2 and 4 workers and
we measure end-to-end wall time (feed → convergence → final reports
collected).  Two shape checks keep the numbers honest:

* every worker count converges to the byte-exact Dijkstra distances
  (the digest is over the final finite distances, the part that is
  worker-count invariant — protocol counts are not);
* all worker counts produce the *same* digest, i.e. scaling changes
  the schedule, never the answer.

No speedup floor is asserted: at bench scale the protocol is chatty
relative to per-vertex work and every hop goes through the master pump,
so more workers mostly buy pipelining of pickling against gathering —
the committed numbers document that honestly rather than gating CI on
host load::

    python -m repro.bench live [--quick]    # merges the "live" section
                                            # into BENCH_perf.json
"""

from __future__ import annotations

import hashlib
import math
import platform
import sys
import time
from typing import Any

from repro.algorithms.graph_common import EdgeStreamRouter
from repro.algorithms.sssp import SSSPProgram, reference_sssp
from repro.bench.harness import ExperimentResult, merge_bench_json
from repro.core import Application, TornadoConfig, TornadoJob
from repro.datagen import livejournal_like
from repro.streams import UniformRate, edge_stream

QUICK_SIZE = (120, 500)
FULL_SIZE = (400, 2000)
QUICK_WORKERS = (1, 2)
FULL_WORKERS = (1, 2, 4)
SOURCE = 0


def _digest(distances: dict[Any, float]) -> str:
    payload = repr(sorted((str(vertex), value)
                          for vertex, value in distances.items()))
    return hashlib.sha256(payload.encode()).hexdigest()


def _finite(values: dict[Any, Any]) -> dict[Any, float]:
    return {vertex: value.distance for vertex, value in values.items()
            if not math.isinf(value.distance)}


def _run_live(edges: list, n_workers: int, timeout: float) -> dict[str, Any]:
    """One timed live run; the clock covers spawn-to-final-report so the
    committed numbers reflect what a user of ``backend="live"`` waits."""
    stream = edge_stream(edges, UniformRate(rate=1e9))
    app = Application(SSSPProgram(SOURCE, max_distance=len(edges) * 2.0),
                      EdgeStreamRouter(), name="sssp")
    started = time.perf_counter()
    job = TornadoJob(app, TornadoConfig(
        backend="live", n_processors=n_workers, report_interval=0.02,
        storage_backend="memory", seed=7))
    try:
        job.feed(stream)
        job.run_until_converged(timeout=timeout)
        job.finalize(timeout=30.0)
        wall = time.perf_counter() - started
        distances = _finite(job.main_values())
        commits = job.total_commits
    finally:
        job.shutdown()
    return {"workers": n_workers, "tuples": len(stream), "wall_s": wall,
            "tuples_per_s": len(stream) / wall if wall > 0 else 0.0,
            "commits": commits, "digest": _digest(distances),
            "distances": distances}


def run_live_bench(quick: bool = False,
                   json_path: str | None = "BENCH_perf.json",
                   *, size: tuple[int, int] | None = None,
                   workers: tuple[int, ...] | None = None,
                   timeout: float = 120.0) -> ExperimentResult:
    """Run the scaling sweep, merge the ``"live"`` section into
    ``json_path`` (preserving whatever perf/delta already wrote) and
    return the usual experiment report."""
    n_vertices, n_edges = size or (QUICK_SIZE if quick else FULL_SIZE)
    sweep = workers or (QUICK_WORKERS if quick else FULL_WORKERS)
    edges = livejournal_like(n_vertices, n_edges, seed=7)
    reference = {vertex: value for vertex, value
                 in reference_sssp(edges, SOURCE).items()
                 if not math.isinf(value)}

    runs = [_run_live(edges, n, timeout) for n in sweep]

    result = ExperimentResult(
        experiment="live",
        title="Live backend: SSSP wall-clock vs worker count",
        columns=["workers", "tuples", "wall_s", "tuples_per_s", "commits"],
        notes=("backend=\"live\" (one OS process per worker, spawn), "
               "wall time includes process startup and final-report "
               "collection; digest is over final finite distances"),
    )
    for run in runs:
        result.add_row(workers=run["workers"], tuples=run["tuples"],
                       wall_s=run["wall_s"],
                       tuples_per_s=run["tuples_per_s"],
                       commits=run["commits"])
    result.check("every worker count matches Dijkstra exactly",
                 all(run["distances"] == reference for run in runs),
                 f"{len(reference)} reachable vertices")
    result.check("identical digests across worker counts",
                 len({run["digest"] for run in runs}) == 1,
                 runs[0]["digest"][:12] + "…")

    report = {
        "bench": "live_backend",
        "version": 1,
        "quick": quick,
        "python": platform.python_version(),
        "graph": {"n_vertices": n_vertices, "n_edges": n_edges},
        "digest": runs[0]["digest"],
        "runs": [{k: run[k] for k in ("workers", "tuples", "wall_s",
                                      "tuples_per_s", "commits")}
                 for run in runs],
    }
    result.extras["report"] = report
    if json_path is not None:
        merge_bench_json(json_path, {"live": report})
    return result


def main(argv: list[str]) -> int:
    result = run_live_bench(quick="--quick" in argv)
    print(result.report())
    return 0 if result.all_checks_pass else 1


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main(sys.argv[1:]))
