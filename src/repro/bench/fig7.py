"""Figure 7: static vs dynamic descent rates (LR on a drifting model).

7a — static rates on an evolving PubMed-like stream: a too-large rate is
unstable (the objective grows), a too-small rate cannot catch up with the
drift, a middle rate tracks best.

7b — the bold-driver heuristic: the rate adapts in both directions and the
error stays low despite the drift.
"""

from __future__ import annotations

from repro.algorithms import BoldDriver, LogisticLoss, StaticRate
from repro.bench.harness import ExperimentResult
from repro.bench.sgd_probe import probe_main_loop, steady_state_error
from repro.bench.workloads import SMALL, Scale, logreg_bundle

LOSS = LogisticLoss(l2=1e-4)


def run_fig7a(scale: Scale = SMALL,
              rates: tuple[float, ...] = (30.0, 0.3, 0.01),
              duration: float = 4.0, dt: float = 0.25,
              drift: float = 1.2) -> ExperimentResult:
    """Approximation error over time for three static descent rates."""
    result = ExperimentResult(
        experiment="fig7a",
        title="LR approximation error with static descent rates",
        columns=["rate", "time_s", "error"],
    )
    dim = scale.dim * 8
    steady: dict[float, float] = {}
    peak: dict[float, float] = {}
    for rate in rates:
        bundle = logreg_bundle(
            scale, drift=drift,
            schedule_factory=lambda r=rate: StaticRate(r))
        samples = probe_main_loop(bundle, LOSS, dim, duration, dt)
        for sample in samples:
            result.add_row(rate=rate, time_s=round(sample.time, 3),
                           error=sample.error)
        steady[rate] = steady_state_error(samples)
        peak[rate] = max((s.error for s in samples), default=float("inf"))
    big, mid, small = sorted(rates, reverse=True)
    result.check(
        f"middle rate ({mid}) tracks the drift best",
        steady[mid] <= steady[big] and steady[mid] <= steady[small],
        f"steady errors: {[(r, round(steady[r], 4)) for r in rates]}")
    result.check(
        f"too-large rate ({big}) is the most unstable",
        peak[big] >= peak[mid],
        f"peak errors: {[(r, round(peak[r], 4)) for r in rates]}")
    result.notes = ("steady-state errors: "
                    + ", ".join(f"rate {r}: {steady[r]:.4g}"
                                for r in rates))
    return result


def run_fig7b(scale: Scale = SMALL, initial_rate: float = 0.05,
              duration: float = 4.0, dt: float = 0.25,
              drift: float = 1.2) -> ExperimentResult:
    """Bold-driver dynamic rate: rate and error over time."""
    result = ExperimentResult(
        experiment="fig7b",
        title="LR with the bold-driver dynamic descent rate",
        columns=["time_s", "rate", "error"],
    )
    dim = scale.dim * 8
    bundle = logreg_bundle(
        scale, drift=drift,
        schedule_factory=lambda: BoldDriver(initial_rate))
    samples = probe_main_loop(bundle, LOSS, dim, duration, dt)
    for sample in samples:
        result.add_row(time_s=round(sample.time, 3), rate=sample.rate,
                       error=sample.error)
    rates = [s.rate for s in samples]
    result.check(
        "the rate adapts in both directions",
        bool(rates) and max(rates) > initial_rate > min(rates),
        f"rate range: [{min(rates or [0]):.4g}, "
        f"{max(rates or [0]):.4g}]")
    # Compare against the static middle rate on the same stream.
    static_bundle = logreg_bundle(
        scale, drift=drift,
        schedule_factory=lambda: StaticRate(initial_rate))
    static_samples = probe_main_loop(static_bundle, LOSS, dim, duration,
                                     dt)
    dynamic_err = steady_state_error(samples)
    static_err = steady_state_error(static_samples)
    result.check(
        "bold driver at least matches the static rate",
        dynamic_err <= static_err * 1.5,
        f"dynamic={dynamic_err:.4g} static={static_err:.4g}")
    result.notes = (f"steady error: dynamic={dynamic_err:.4g}, "
                    f"static({initial_rate})={static_err:.4g}")
    return result
